(* Recursive-descent parser for the W2-flavoured language.

   Grammar (informally):

     module   ::= "module" ID import* export* section+ "end"
     import   ::= "import" ID "(" importsig ("," importsig)* ")" ";"
     importsig::= ID "(" [type ("," type)*] ")" [":" type]
     export   ::= "export" ID ("," ID)* ";"
     section  ::= "section" ID "cells" INT function+ "end"
     function ::= "function" ID "(" params? ")" [":" type]
                  decl* "begin" stmt* "end"
     decl     ::= "var" ID ("," ID)* ":" type ";"
     type     ::= "int" | "float" | "bool" | "array" "[" INT "]" "of" type
     stmt     ::= lvalue ":=" expr ";"
                | "if" expr "then" stmt* ["else" stmt*] "end" ";"
                | "while" expr "do" stmt* "end" ";"
                | "for" ID ":=" expr "to" expr "do" stmt* "end" ";"
                | "send" "(" ("X"|"Y") "," expr ")" ";"
                | "receive" "(" ("X"|"Y") "," lvalue ")" ";"
                | "return" [expr] ";"
                | ID "(" args ")" ";"

   Expressions use the usual precedence ladder:
   or < and < comparison < additive < multiplicative < unary < primary. *)

exception Error of string * Loc.t

type t = {
  lexer : Lexer.t;
  mutable tok : Token.t;
  mutable loc : Loc.t;
}

let advance p =
  let tok, loc = Lexer.next p.lexer in
  p.tok <- tok;
  p.loc <- loc

let create ?file src =
  let lexer = Lexer.create ?file src in
  let tok, loc = Lexer.next lexer in
  { lexer; tok; loc }

let error p msg = raise (Error (msg, p.loc))

let expect p tok =
  if p.tok = tok then advance p
  else
    error p
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string p.tok))

let expect_ident p =
  match p.tok with
  | Token.IDENT name ->
    advance p;
    name
  | tok -> error p ("expected identifier but found '" ^ Token.to_string tok ^ "'")

let expect_int p =
  match p.tok with
  | Token.INT n ->
    advance p;
    n
  | tok ->
    error p ("expected integer literal but found '" ^ Token.to_string tok ^ "'")

let rec parse_type p =
  match p.tok with
  | Token.TINT ->
    advance p;
    Ast.Tint
  | Token.TFLOAT ->
    advance p;
    Ast.Tfloat
  | Token.TBOOL ->
    advance p;
    Ast.Tbool
  | Token.ARRAY ->
    advance p;
    expect p Token.LBRACKET;
    let n = expect_int p in
    expect p Token.RBRACKET;
    expect p Token.OF;
    let elt = parse_type p in
    Ast.Tarray (n, elt)
  | tok -> error p ("expected a type but found '" ^ Token.to_string tok ^ "'")

let parse_channel p =
  let name = expect_ident p in
  match String.uppercase_ascii name with
  | "X" -> Ast.Chan_x
  | "Y" -> Ast.Chan_y
  | _ -> error p (Printf.sprintf "expected channel X or Y, found '%s'" name)

(* --- Expressions --- *)

let rec parse_expr p = parse_or p

and parse_or p =
  let left = parse_and p in
  if p.tok = Token.OR then begin
    let loc = p.loc in
    advance p;
    let right = parse_or p in
    { Ast.e = Ast.Binary (Ast.Or, left, right); eloc = loc }
  end
  else left

and parse_and p =
  let left = parse_cmp p in
  if p.tok = Token.AND then begin
    let loc = p.loc in
    advance p;
    let right = parse_and p in
    { Ast.e = Ast.Binary (Ast.And, left, right); eloc = loc }
  end
  else left

and parse_cmp p =
  let left = parse_additive p in
  let op =
    match p.tok with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    let loc = p.loc in
    advance p;
    let right = parse_additive p in
    { Ast.e = Ast.Binary (op, left, right); eloc = loc }

and parse_additive p =
  let rec loop left =
    match p.tok with
    | Token.PLUS | Token.MINUS ->
      let op = if p.tok = Token.PLUS then Ast.Add else Ast.Sub in
      let loc = p.loc in
      advance p;
      let right = parse_multiplicative p in
      loop { Ast.e = Ast.Binary (op, left, right); eloc = loc }
    | _ -> left
  in
  loop (parse_multiplicative p)

and parse_multiplicative p =
  let rec loop left =
    match p.tok with
    | Token.STAR | Token.SLASH | Token.MOD ->
      let op =
        match p.tok with
        | Token.STAR -> Ast.Mul
        | Token.SLASH -> Ast.Div
        | _ -> Ast.Mod
      in
      let loc = p.loc in
      advance p;
      let right = parse_unary p in
      loop { Ast.e = Ast.Binary (op, left, right); eloc = loc }
    | _ -> left
  in
  loop (parse_unary p)

and parse_unary p =
  match p.tok with
  | Token.MINUS ->
    let loc = p.loc in
    advance p;
    let operand = parse_unary p in
    { Ast.e = Ast.Unary (Ast.Neg, operand); eloc = loc }
  | Token.NOT ->
    let loc = p.loc in
    advance p;
    let operand = parse_unary p in
    { Ast.e = Ast.Unary (Ast.Not, operand); eloc = loc }
  | _ -> parse_primary p

and parse_primary p =
  let loc = p.loc in
  match p.tok with
  | Token.INT n ->
    advance p;
    { Ast.e = Ast.Int_lit n; eloc = loc }
  | Token.FLOAT f ->
    advance p;
    { Ast.e = Ast.Float_lit f; eloc = loc }
  | Token.TRUE ->
    advance p;
    { Ast.e = Ast.Bool_lit true; eloc = loc }
  | Token.FALSE ->
    advance p;
    { Ast.e = Ast.Bool_lit false; eloc = loc }
  | Token.LPAREN ->
    advance p;
    let inner = parse_expr p in
    expect p Token.RPAREN;
    inner
  | Token.TFLOAT ->
    (* The int->float conversion builtin shares its name with the type
       keyword. *)
    advance p;
    expect p Token.LPAREN;
    let args = parse_args p in
    expect p Token.RPAREN;
    { Ast.e = Ast.Call ("float", args); eloc = loc }
  | Token.IDENT name -> begin
    advance p;
    match p.tok with
    | Token.LBRACKET ->
      advance p;
      let index = parse_expr p in
      expect p Token.RBRACKET;
      { Ast.e = Ast.Index (name, index); eloc = loc }
    | Token.LPAREN ->
      advance p;
      let args = parse_args p in
      expect p Token.RPAREN;
      { Ast.e = Ast.Call (name, args); eloc = loc }
    | _ -> { Ast.e = Ast.Var name; eloc = loc }
  end
  | tok ->
    error p ("expected an expression but found '" ^ Token.to_string tok ^ "'")

and parse_args p =
  if p.tok = Token.RPAREN then []
  else
    let rec loop acc =
      let arg = parse_expr p in
      if p.tok = Token.COMMA then begin
        advance p;
        loop (arg :: acc)
      end
      else List.rev (arg :: acc)
    in
    loop []

(* --- Statements --- *)

let parse_lvalue p =
  let name = expect_ident p in
  if p.tok = Token.LBRACKET then begin
    advance p;
    let index = parse_expr p in
    expect p Token.RBRACKET;
    Ast.Lindex (name, index)
  end
  else Ast.Lvar name

let rec parse_stmt p =
  let loc = p.loc in
  match p.tok with
  | Token.IF ->
    advance p;
    let cond = parse_expr p in
    expect p Token.THEN;
    let then_branch = parse_stmts p in
    let else_branch =
      if p.tok = Token.ELSE then begin
        advance p;
        parse_stmts p
      end
      else []
    in
    expect p Token.END;
    expect p Token.SEMI;
    { Ast.s = Ast.If (cond, then_branch, else_branch); sloc = loc }
  | Token.WHILE ->
    advance p;
    let cond = parse_expr p in
    expect p Token.DO;
    let body = parse_stmts p in
    expect p Token.END;
    expect p Token.SEMI;
    { Ast.s = Ast.While (cond, body); sloc = loc }
  | Token.FOR ->
    advance p;
    let var = expect_ident p in
    expect p Token.ASSIGN;
    let lo = parse_expr p in
    expect p Token.TO;
    let hi = parse_expr p in
    expect p Token.DO;
    let body = parse_stmts p in
    expect p Token.END;
    expect p Token.SEMI;
    { Ast.s = Ast.For (var, lo, hi, body); sloc = loc }
  | Token.SEND ->
    advance p;
    expect p Token.LPAREN;
    let chan = parse_channel p in
    expect p Token.COMMA;
    let value = parse_expr p in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    { Ast.s = Ast.Send (chan, value); sloc = loc }
  | Token.RECEIVE ->
    advance p;
    expect p Token.LPAREN;
    let chan = parse_channel p in
    expect p Token.COMMA;
    let target = parse_lvalue p in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    { Ast.s = Ast.Receive (chan, target); sloc = loc }
  | Token.RETURN ->
    advance p;
    if p.tok = Token.SEMI then begin
      advance p;
      { Ast.s = Ast.Return None; sloc = loc }
    end
    else begin
      let value = parse_expr p in
      expect p Token.SEMI;
      { Ast.s = Ast.Return (Some value); sloc = loc }
    end
  | Token.IDENT name -> begin
    advance p;
    match p.tok with
    | Token.LPAREN ->
      advance p;
      let args = parse_args p in
      expect p Token.RPAREN;
      expect p Token.SEMI;
      { Ast.s = Ast.Call_stmt (name, args); sloc = loc }
    | Token.LBRACKET ->
      advance p;
      let index = parse_expr p in
      expect p Token.RBRACKET;
      expect p Token.ASSIGN;
      let value = parse_expr p in
      expect p Token.SEMI;
      { Ast.s = Ast.Assign (Ast.Lindex (name, index), value); sloc = loc }
    | Token.ASSIGN ->
      advance p;
      let value = parse_expr p in
      expect p Token.SEMI;
      { Ast.s = Ast.Assign (Ast.Lvar name, value); sloc = loc }
    | tok ->
      error p
        (Printf.sprintf "expected ':=', '[' or '(' after '%s' but found '%s'"
           name (Token.to_string tok))
  end
  | tok -> error p ("expected a statement but found '" ^ Token.to_string tok ^ "'")

and parse_stmts p =
  let starts_stmt = function
    | Token.IF | Token.WHILE | Token.FOR | Token.SEND | Token.RECEIVE
    | Token.RETURN | Token.IDENT _ ->
      true
    | _ -> false
  in
  let rec loop acc =
    if starts_stmt p.tok then loop (parse_stmt p :: acc) else List.rev acc
  in
  loop []

(* --- Declarations and top level --- *)

let parse_decls p =
  let rec loop acc =
    if p.tok = Token.VAR then begin
      advance p;
      let rec names acc =
        let loc = p.loc in
        let name = expect_ident p in
        if p.tok = Token.COMMA then begin
          advance p;
          names ((name, loc) :: acc)
        end
        else List.rev ((name, loc) :: acc)
      in
      let group = names [] in
      expect p Token.COLON;
      let ty = parse_type p in
      expect p Token.SEMI;
      let decls =
        List.map (fun (name, loc) -> { Ast.dname = name; dty = ty; dloc = loc }) group
      in
      loop (List.rev_append decls acc)
    end
    else List.rev acc
  in
  loop []

let parse_params p =
  if p.tok = Token.RPAREN then []
  else
    let rec loop acc =
      let loc = p.loc in
      let name = expect_ident p in
      expect p Token.COLON;
      let ty = parse_type p in
      let param = { Ast.pname = name; pty = ty; ploc = loc } in
      if p.tok = Token.COMMA then begin
        advance p;
        loop (param :: acc)
      end
      else List.rev (param :: acc)
    in
    loop []

let parse_function p =
  let loc = p.loc in
  expect p Token.FUNCTION;
  let name = expect_ident p in
  expect p Token.LPAREN;
  let params = parse_params p in
  expect p Token.RPAREN;
  let ret =
    if p.tok = Token.COLON then begin
      advance p;
      Some (parse_type p)
    end
    else None
  in
  let locals = parse_decls p in
  expect p Token.BEGIN;
  let body = parse_stmts p in
  expect p Token.END;
  { Ast.fname = name; params; ret; locals; body; floc = loc }

let parse_section p =
  let loc = p.loc in
  expect p Token.SECTION;
  let name = expect_ident p in
  expect p Token.CELLS;
  let cells = expect_int p in
  (* Optional section-level globals: [var] groups before the first
     function, sharing the declaration grammar of function locals. *)
  let globals = parse_decls p in
  let rec loop acc =
    if p.tok = Token.FUNCTION then loop (parse_function p :: acc)
    else List.rev acc
  in
  let funcs = loop [] in
  expect p Token.END;
  if funcs = [] then error p ("section '" ^ name ^ "' declares no function");
  { Ast.sname = name; cells; globals; funcs; secloc = loc }

(* One imported-function signature: name, parameter types, optional
   return type.  The signature is restated at the import site so the
   module checks without its dependencies' sources. *)
let parse_import_sig p =
  let loc = p.loc in
  let name = expect_ident p in
  expect p Token.LPAREN;
  let tys =
    if p.tok = Token.RPAREN then []
    else
      let rec loop acc =
        let ty = parse_type p in
        if p.tok = Token.COMMA then begin
          advance p;
          loop (ty :: acc)
        end
        else List.rev (ty :: acc)
      in
      loop []
  in
  expect p Token.RPAREN;
  let ret =
    if p.tok = Token.COLON then begin
      advance p;
      Some (parse_type p)
    end
    else None
  in
  { Ast.is_name = name; is_params = tys; is_ret = ret; is_loc = loc }

let parse_import p =
  let loc = p.loc in
  expect p Token.IMPORT;
  let from = expect_ident p in
  expect p Token.LPAREN;
  let rec loop acc =
    let s = parse_import_sig p in
    if p.tok = Token.COMMA then begin
      advance p;
      loop (s :: acc)
    end
    else List.rev (s :: acc)
  in
  let sigs = loop [] in
  expect p Token.RPAREN;
  expect p Token.SEMI;
  { Ast.im_module = from; im_sigs = sigs; im_loc = loc }

let parse_export p =
  expect p Token.EXPORT;
  let rec loop acc =
    let loc = p.loc in
    let name = expect_ident p in
    if p.tok = Token.COMMA then begin
      advance p;
      loop ({ Ast.ex_name = name; ex_loc = loc } :: acc)
    end
    else List.rev ({ Ast.ex_name = name; ex_loc = loc } :: acc)
  in
  let exports = loop [] in
  expect p Token.SEMI;
  exports

let parse_module p =
  let loc = p.loc in
  expect p Token.MODULE;
  let name = expect_ident p in
  let rec imports acc =
    if p.tok = Token.IMPORT then imports (parse_import p :: acc)
    else List.rev acc
  in
  let imports = imports [] in
  let rec exports acc =
    if p.tok = Token.EXPORT then exports (List.rev_append (parse_export p) acc)
    else List.rev acc
  in
  let exports = exports [] in
  let rec loop acc =
    if p.tok = Token.SECTION then loop (parse_section p :: acc)
    else List.rev acc
  in
  let sections = loop [] in
  expect p Token.END;
  expect p Token.EOF;
  if sections = [] then error p ("module '" ^ name ^ "' declares no section");
  { Ast.mname = name; imports; exports; sections; mloc = loc }

(* Entry points. *)

let module_of_string ?file src = parse_module (create ?file src)

let function_of_string ?file src =
  let p = create ?file src in
  let f = parse_function p in
  expect p Token.EOF;
  f

let expr_of_string ?file src =
  let p = create ?file src in
  let e = parse_expr p in
  expect p Token.EOF;
  e
