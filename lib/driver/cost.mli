(** Compilation cost model: deterministic work units (measured while
    the real compiler runs) → simulated seconds on a 1989 SUN
    workstation running the Common-Lisp compiler, plus the memory
    behaviour that drives GC and paging.

    Calibration anchors from the paper: ~300-line functions ≈ 19-22
    sequential minutes and small functions 2-6 minutes (§4.3); parsing
    under 5% of sequential compilation (§3.4); the sequential compiler
    thrashes on modules exceeding one workstation's memory (§4.2.3);
    Lisp startup downloads a multi-megabyte core image (§4.2.3). *)

type model = {
  sec_per_token : float; (** phase 1 *)
  sec_per_ast_node : float;
  sec_per_opt_unit : float; (** phase 2 *)
  sec_per_sched_unit : float; (** phase 3 *)
  sec_per_wide : float;
  func_fixed_seconds : float; (** per-function Lisp bookkeeping *)
  sec_per_wide_assembly : float; (** phase 4 *)
  sec_per_image_byte : float;
  workstation_mb : float;
  lisp_core_mb : float;
  ast_mb_per_loc : float;
  data_mb_per_loc : float; (** live data while compiling one function *)
  retained_mb_per_loc : float;
      (** kept by the sequential Lisp until the end, per compiled line *)
  parse_garbage_mb_per_loc : float;
      (** phase-1 garbage in the sequential Lisp's heap *)
  parse_garbage_cap_mb : float; (** the collector eventually reclaims it *)
  gc_slope : float; (** above [gc_knee] of physical memory *)
  gc_knee : float;
  page_coeff : float;
      (** paging above 1.0; diskless stations page through the shared
          file server, so the cost scales with the square of the number
          of paging stations *)
  max_slowdown : float;
  lisp_core_bytes : float; (** downloaded at Lisp process start *)
  lisp_init_seconds : float;
  c_process_seconds : float; (** master / section-master startup *)
  fm_fork_seconds : float;
      (** remote process creation, serialized in the forking parent *)
  source_bytes_per_loc : float;
  diagnostic_bytes : float;
}

val default : model
(** The calibrated 1989 host (see DESIGN.md section 5b). *)

(** {1 Time} *)

val phase1_seconds : model -> Compile.module_work -> float
(** Parse + semantic check of the whole module. *)

val setup_parse_seconds : model -> Compile.module_work -> float
(** The master's extra structure-discovering parse (implementation
    overhead). *)

val phase23_seconds : model -> Compile.func_work -> float
(** One function master's compile work (nominal; memory slowdowns are
    applied by the simulation). *)

val task_phase23_seconds : model -> Compile.func_work list -> float
(** Estimated phases-2+3 compute of a task compiling several functions
    in one function master: the sum of the functions'
    {!phase23_seconds}.  This is the cost signal the parallel
    compiler's scheduler ranks (LPT) and batches by, and a term of the
    supervision deadline. *)

val static_phase23_seconds : model -> Compile.func_work -> float
(** Static stand-in for {!phase23_seconds}: prices the abstract
    interpretation's statement-execution bound ([fw_static_units]) as
    optimizer work units, so the scheduler can rank tasks before any
    function has been compiled.  Falls back to {!phase23_seconds} when
    the bound is missing. *)

val static_task_seconds : model -> Compile.func_work list -> float
(** Sum of {!static_phase23_seconds} over a task's functions — the
    [--static-cost] scheduling signal. *)

val phase4_seconds : model -> Compile.module_work -> float
(** Assembly, linking, I/O drivers. *)

val combine_seconds : Compile.section_work -> float
(** Section master combining results and diagnostics (includes a
    per-diagnostic merge share). *)

val task_diag_bytes : Compile.func_work list -> float
(** Bytes of rendered diagnostics a task's function masters write back
    with their results, on top of the fixed [diagnostic_bytes]
    framing. *)

val phase2_seconds : model -> Compile.func_work -> float
(** Fine-grained split: the optimizer half of a function's work. *)

val phase3_seconds : model -> Compile.func_work -> float
(** Fine-grained split: the scheduling/codegen half. *)

val ir_bytes : Compile.func_work -> float
(** Size of the serialized optimized IR a phase-2 master ships to a
    phase-3 master. *)

(** {1 Memory} *)

val function_master_mb : model -> Compile.func_work -> float
(** Resident set of a function master compiling one function. *)

val sequential_mb :
  model -> Compile.module_work -> compiled_loc:int -> current_loc:int -> float
(** Resident set of the sequential compiler while compiling a function,
    given how many lines it has already compiled (its heap never
    shrinks). *)

val slowdown : model -> pressure:float -> pagers:int -> float
(** CPU slowdown at the given memory pressure when [pagers] stations
    cluster-wide are paging simultaneously. *)

val source_bytes : model -> int -> float
