(* The four-phase compiler pipeline (section 3.2 of the paper), with
   work-unit accounting.

   Running the real compiler yields deterministic work counts per phase
   and per function; [Cost] converts them into simulated 1989 seconds.
   Phase 1 (parse + semantic check) and phase 4 (assembly, linking, I/O
   drivers) are module/section-level; phases 2 (flowgraph + optimizer)
   and 3 (software pipelining + code generation) are the per-function
   work that the parallel compiler distributes. *)

exception Compile_error of string

type func_work = {
  fw_name : string;
  fw_section : string;
  fw_loc : int; (* source lines: the paper's size metric *)
  fw_tokens : int; (* tokens of this function's own source text *)
  fw_ast_nodes : int;
  fw_ir_instrs : int; (* after lowering, before optimization *)
  fw_opt_work : int; (* phase 2 work units *)
  fw_sched_work : int; (* phase 3 work units *)
  fw_wides : int; (* code size in wide instructions *)
  fw_pipelined : int;
  fw_spilled : int;
  fw_static_units : int option; (* statically bounded statement
                                   executions (absint cost domain);
                                   None when the refinement is off *)
  fw_key : string option; (* content-addressed compile-cache key
                             (salted, closed over dependence
                             predecessors); None when the analysis
                             was not run *)
  fw_diags : W2.Diag.t list; (* findings this function's master reports
                                back to its section master *)
}

type section_work = {
  sw_name : string;
  sw_funcs : func_work list;
  sw_image : Warp.Mcode.image;
  sw_image_bytes : int;
  sw_driver : Warp.Iodriver.t;
  sw_diags : W2.Diag.t list; (* combined per-function diagnostics, in
                                file order *)
}

type module_work = {
  mw_name : string;
  mw_loc : int;
  mw_tokens : int; (* lexed tokens of the whole module: phase 1 *)
  mw_sections : section_work list;
  mw_analysis : Analysis.Depan.t;
      (* whole-module dependence analysis, computed in phase 1 by the
         sequential master; downstream, Plan derives the task DAG from
         it and charges no simulated time for the analysis itself *)
}

let all_diags (mw : module_work) : W2.Diag.t list =
  W2.Diag.sort (List.concat_map (fun s -> s.sw_diags) mw.mw_sections)

let count_tokens source = List.length (W2.Lexer.tokenize source)

let ast_nodes (f : W2.Ast.func) =
  W2.Ast.stmt_count f.W2.Ast.body + List.length f.W2.Ast.locals
  + List.length f.W2.Ast.params

let verify_failure violations =
  Compile_error
    ("internal error: IR verification failed\n"
    ^ String.concat "\n"
        (List.map Midend.Irverify.violation_to_string violations))

(* Phases 2 and 3 for one function.  [diags] are the phase-1 lint
   findings attributed to this function; the function master carries
   them (plus anything the IR verifier reports) back up the hierarchy. *)
let compile_function ?(level = 2) ?(verify_each = false) ?(diags = [])
    ?(globals = []) ?static_units ?key ~func_rets ~section (f : W2.Ast.func) :
    func_work * Warp.Mcode.mfunc * Midend.Ir.func =
  let ir = Midend.Lower.lower_function ~func_rets ~globals f in
  let fw_ir_instrs = Midend.Ir.instr_count ir in
  let stats = Midend.Opt.optimize ~level ~verify_each ir in
  (* End of phase 2: the IR verifier always runs here; a violation means
     an optimization pass miscompiled, which aborts like a phase-1
     error. *)
  (match Midend.Irverify.check_func ir with
  | [] -> ()
  | violations -> raise (verify_failure violations));
  let compiled = Warp.Codegen.compile_function ir in
  let work =
    {
      fw_name = f.W2.Ast.fname;
      fw_section = section;
      fw_loc = W2.Pretty.func_loc f;
      fw_tokens = count_tokens (W2.Pretty.func_to_string f);
      fw_ast_nodes = ast_nodes f;
      fw_ir_instrs;
      fw_opt_work = stats.Midend.Opt.work;
      fw_sched_work = compiled.Warp.Codegen.sched_work;
      fw_wides = compiled.Warp.Codegen.wide_count;
      fw_pipelined = compiled.Warp.Codegen.pipelined;
      fw_spilled = compiled.Warp.Codegen.spilled;
      fw_static_units = static_units;
      fw_key = key;
      fw_diags = diags;
    }
  in
  (work, compiled.Warp.Codegen.mfunc, ir)

let func_rets_of (sec : W2.Ast.section) =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (f : W2.Ast.func) ->
      Hashtbl.replace table f.W2.Ast.fname
        (Option.map
           (function
             | W2.Ast.Tint -> Midend.Ir.Int
             | W2.Ast.Tfloat -> Midend.Ir.Float
             | W2.Ast.Tbool -> Midend.Ir.Bool
             | W2.Ast.Tarray _ -> raise (Compile_error "array return type"))
           f.W2.Ast.ret))
    sec.W2.Ast.funcs;
  table

(* Phases 2-4 for one section.  Lint findings (phase 1, whole-section
   context) are computed here — including the analyzer-fed coupling
   warnings W008/W009 when a [depan] summary is supplied — and
   distributed to the per-function work records; after all functions
   are compiled, the cross-function call check of the IR verifier runs
   over the section, followed by the analyzer's AST-vs-IR call
   cross-check. *)
let compile_section ?(level = 2) ?(verify_each = false)
    ?(depan : Analysis.Depan.section_info option) (sec : W2.Ast.section) :
    section_work =
  let func_rets = func_rets_of sec in
  let lints = ref [] in
  W2.Lint.lint_section (fun d -> lints := d :: !lints) sec;
  let coupling =
    match depan with
    | Some si -> Analysis.Depan.lint_section si
    | None -> []
  in
  let lints = W2.Diag.sort (coupling @ !lints) in
  let static_units_of (f : W2.Ast.func) =
    match depan with
    | None -> None
    | Some si ->
      Array.to_list si.Analysis.Depan.si_funcs
      |> List.find_opt (fun fi -> fi.Analysis.Depan.fi_name = f.W2.Ast.fname)
      |> fun fi ->
      Option.bind fi (fun fi ->
          Option.map Analysis.Absint.cost_units fi.Analysis.Depan.fi_cost)
  in
  (* Compile-cache keys: derived from the analyzer's section summary
     (hash + dependence closure) under the configuration salt, so a
     function master downstream can address its phase-2/3 artifact by
     content.  Without the analysis there are no keys and downstream
     lookups always miss. *)
  let key_of =
    match depan with
    | None -> fun _ -> None
    | Some si ->
      let keys =
        Analysis.Depan.cache_keys
          ~salt:(Analysis.Depan.cache_salt ~opt_level:level ~verify_each)
          si
      in
      fun (f : W2.Ast.func) ->
        Array.to_list si.Analysis.Depan.si_funcs
        |> List.find_opt (fun fi -> fi.Analysis.Depan.fi_name = f.W2.Ast.fname)
        |> Option.map (fun fi -> keys.(fi.Analysis.Depan.fi_index))
  in
  let results =
    List.map
      (fun (f : W2.Ast.func) ->
        compile_function ~level ~verify_each
          ~diags:(W2.Diag.for_func f.W2.Ast.fname lints)
          ?static_units:(static_units_of f) ?key:(key_of f)
          ~globals:sec.W2.Ast.globals
          ~func_rets ~section:sec.W2.Ast.sname f)
      sec.W2.Ast.funcs
  in
  let ir_section =
    {
      Midend.Ir.sec_name = sec.W2.Ast.sname;
      cells = sec.W2.Ast.cells;
      funcs = List.map (fun (_, _, ir) -> ir) results;
    }
  in
  (match Midend.Irverify.check_calls ir_section with
  | [] -> ()
  | violations -> raise (verify_failure violations));
  (match depan with
  | None -> ()
  | Some si -> (
    match Analysis.Depan.check_ir_calls si ir_section with
    | [] -> ()
    | violations -> raise (verify_failure violations)));
  let image =
    Warp.Link.link ~section:sec.W2.Ast.sname ~cells:sec.W2.Ast.cells
      (List.map (fun (_, mfunc, _) -> mfunc) results)
  in
  let driver = Warp.Iodriver.generate image in
  {
    sw_name = sec.W2.Ast.sname;
    sw_funcs = List.map (fun (fw, _, _) -> fw) results;
    sw_image = image;
    sw_image_bytes = Warp.Asm.encoded_size image;
    sw_driver = driver;
    sw_diags = lints;
  }

(* The whole compiler, from source text.  Raises [Compile_error] on
   phase-1 failure (the master aborts, as in the paper). *)
let compile_source ?(level = 2) ?(verify_each = false) ?(file = "<module>")
    ?max_tracked ?(absint = true)
    ?(absint_max_intervals = Analysis.Absint.default_max_intervals)
    (source : string) : module_work =
  let tokens = count_tokens source in
  let m =
    try W2.Parser.module_of_string ~file source with
    | W2.Parser.Error (msg, loc) ->
      raise (Compile_error (Printf.sprintf "%s: %s" (W2.Loc.to_string loc) msg))
    | W2.Lexer.Error (msg, loc) ->
      raise (Compile_error (Printf.sprintf "%s: %s" (W2.Loc.to_string loc) msg))
  in
  (match W2.Semcheck.check_module m with
  | [] -> ()
  | errors ->
    raise
      (Compile_error
         (String.concat "\n" (List.map W2.Semcheck.error_to_string errors))));
  (* Interprocedural dependence analysis — still phase 1, still the
     sequential master; its section summaries feed the coupling lints
     and the per-section IR cross-check below. *)
  let analysis =
    Analysis.Depan.analyze ?max_tracked ~absint ~absint_max_intervals m
  in
  {
    mw_name = m.W2.Ast.mname;
    mw_loc = W2.Pretty.source_lines source;
    mw_tokens = tokens;
    mw_sections =
      List.map2
        (fun depan sec -> compile_section ~level ~verify_each ~depan sec)
        analysis.Analysis.Depan.dp_sections m.W2.Ast.sections;
    mw_analysis = analysis;
  }

(* Convenience: compile an AST (pretty-printing it first so that the
   token count reflects a real source file). *)
let compile_module ?(level = 2) ?(verify_each = false) ?max_tracked
    ?(absint = true) (m : W2.Ast.modul) : module_work =
  compile_source ~level ~verify_each ?max_tracked ~absint
    (W2.Pretty.module_to_string m)

let all_funcs (mw : module_work) : func_work list =
  List.concat_map (fun s -> s.sw_funcs) mw.mw_sections

let total_image_bytes (mw : module_work) : int =
  List.fold_left (fun acc s -> acc + s.sw_image_bytes) 0 mw.mw_sections
