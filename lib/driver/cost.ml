(* Compilation cost model: deterministic work units (measured by running
   the real compiler) -> simulated seconds on a 1989 SUN workstation
   running the Common-Lisp compiler, plus the memory behaviour that
   drives GC and paging.

   Calibration anchors from the paper:
     - a ~300-line function compiles sequentially in 19-22 minutes,
       5-45-line functions in 2-6 minutes (section 4.3);
     - parsing accounts for under 5% of sequential compilation
       (section 3.4);
     - the sequential compiler thrashes on modules that exceed one
       workstation's memory (section 4.2.3);
     - Lisp process startup downloads a multi-megabyte core image over
       the shared Ethernet (section 4.2.3). *)

type model = {
  (* phase 1 (sequential, module level) *)
  sec_per_token : float;
  sec_per_ast_node : float;
  (* phases 2+3 (parallel, function level) *)
  sec_per_opt_unit : float;
  sec_per_sched_unit : float;
  sec_per_wide : float;
  func_fixed_seconds : float; (* per-function Lisp bookkeeping *)
  (* phase 4 (sequential, section/module level) *)
  sec_per_wide_assembly : float;
  sec_per_image_byte : float;
  (* memory model (megabytes) *)
  workstation_mb : float;
  lisp_core_mb : float;
  ast_mb_per_loc : float; (* parsed module held by a process *)
  data_mb_per_loc : float; (* live data while compiling one function *)
  retained_mb_per_loc : float; (* per compiled function, kept by the
                                   sequential Lisp until the end *)
  parse_garbage_mb_per_loc : float; (* phase-1 garbage in the sequential
                                       Lisp's heap (the parallel masters
                                       parse in separate processes) *)
  parse_garbage_cap_mb : float; (* the collector eventually reclaims it *)
  (* GC and paging slowdown as a function of memory pressure *)
  gc_slope : float; (* above [gc_knee] of physical memory *)
  gc_knee : float;
  page_coeff : float; (* paging above 1.0; diskless stations page through
                         the shared file server, so the cost scales with
                         the square of the number of paging stations *)
  max_slowdown : float;
  (* process startup *)
  lisp_core_bytes : float; (* downloaded at Lisp process start *)
  lisp_init_seconds : float; (* interpreting initialization info *)
  c_process_seconds : float; (* master / section master startup *)
  fm_fork_seconds : float; (* remote process creation, serialized in the
                              forking section master *)
  (* file traffic *)
  source_bytes_per_loc : float;
  diagnostic_bytes : float;
}

let default =
  {
    sec_per_token = 0.0055;
    sec_per_ast_node = 0.010;
    sec_per_opt_unit = 0.016;
    sec_per_sched_unit = 0.0005;
    sec_per_wide = 0.32;
    func_fixed_seconds = 3.0;
    sec_per_wide_assembly = 0.008;
    sec_per_image_byte = 1.5e-5;
    workstation_mb = 16.0;
    lisp_core_mb = 8.0;
    ast_mb_per_loc = 0.0005;
    data_mb_per_loc = 0.024;
    retained_mb_per_loc = 0.0002;
    parse_garbage_mb_per_loc = 0.03;
    parse_garbage_cap_mb = 3.0;
    gc_slope = 1.4;
    gc_knee = 0.50;
    page_coeff = 1.2;
    max_slowdown = 3.5;
    lisp_core_bytes = 8.0e6;
    lisp_init_seconds = 15.0;
    c_process_seconds = 0.6;
    fm_fork_seconds = 2.0;
    source_bytes_per_loc = 40.0;
    diagnostic_bytes = 4096.0;
  }

(* --- time conversions --- *)

(* Phase 1 for the whole module (parse + semantic check). *)
let phase1_seconds m (mw : Compile.module_work) =
  let nodes =
    List.fold_left (fun acc f -> acc + f.Compile.fw_ast_nodes) 0 (Compile.all_funcs mw)
  in
  (m.sec_per_token *. float_of_int mw.Compile.mw_tokens)
  +. (m.sec_per_ast_node *. float_of_int nodes)

(* The quick structure-discovering parse the master performs to set up
   the parallel compilation (no semantic checking). *)
let setup_parse_seconds m (mw : Compile.module_work) =
  0.5 *. m.sec_per_token *. float_of_int mw.Compile.mw_tokens

(* Phases 2+3 for one function: the work a function master performs. *)
let phase23_seconds m (fw : Compile.func_work) =
  m.func_fixed_seconds
  +. (m.sec_per_opt_unit *. float_of_int fw.Compile.fw_opt_work)
  +. (m.sec_per_sched_unit *. float_of_int fw.Compile.fw_sched_work)
  +. (m.sec_per_wide *. float_of_int fw.Compile.fw_wides)

(* Estimated phases-2+3 compute of one multi-function task: the cost
   signal the scheduler ranks and batches by, and the term of the
   supervision deadline that scales with the task.  Summed in function
   order so the estimate is bit-stable across plan permutations. *)
let task_phase23_seconds m (funcs : Compile.func_work list) =
  List.fold_left (fun acc fw -> acc +. phase23_seconds m fw) 0.0 funcs

(* Static stand-in for [phase23_seconds]: the abstract interpretation's
   statement-execution bound priced as optimizer work units.  It only
   has to {e rank} functions like the measured signal does (the
   scheduler compares costs, it never adds them to the clock), so one
   abstract statement execution ~ one phase-2 work unit is close
   enough.  Falls back to the measured estimate when the bound is
   missing (absint off, or a function the domain widened to top). *)
let static_phase23_seconds m (fw : Compile.func_work) =
  match fw.Compile.fw_static_units with
  | Some units ->
    m.func_fixed_seconds +. (m.sec_per_opt_unit *. float_of_int units)
  | None -> phase23_seconds m fw

let static_task_seconds m (funcs : Compile.func_work list) =
  List.fold_left (fun acc fw -> acc +. static_phase23_seconds m fw) 0.0 funcs

(* Phase 4 for the whole module (assembly, linking, I/O drivers). *)
let phase4_seconds m (mw : Compile.module_work) =
  let wides =
    List.fold_left (fun acc f -> acc + f.Compile.fw_wides) 0 (Compile.all_funcs mw)
  in
  (m.sec_per_wide_assembly *. float_of_int wides)
  +. (m.sec_per_image_byte *. float_of_int (Compile.total_image_bytes mw))

(* Time the section master spends combining results and diagnostics:
   a per-function share, a per-wide share, and a per-diagnostic share
   for merging the findings back into file order. *)
let combine_seconds (sw : Compile.section_work) =
  let wides =
    List.fold_left (fun acc f -> acc + f.Compile.fw_wides) 0 sw.Compile.sw_funcs
  in
  (0.008 *. float_of_int wides)
  +. (0.5 *. float_of_int (List.length sw.Compile.sw_funcs))
  +. (0.02 *. float_of_int (List.length sw.Compile.sw_diags))

(* Bytes of rendered diagnostics a task's function masters write back
   with their results (the fixed [diagnostic_bytes] framing is charged
   separately, per task). *)
let task_diag_bytes (funcs : Compile.func_work list) =
  float_of_int
    (List.fold_left
       (fun acc fw -> acc + W2.Diag.encoded_bytes fw.Compile.fw_diags)
       0 funcs)

(* --- memory --- *)

(* Resident set of a function master compiling [fw]. *)
let function_master_mb m (fw : Compile.func_work) =
  m.lisp_core_mb
  +. (m.ast_mb_per_loc *. float_of_int fw.Compile.fw_loc)
  +. (m.data_mb_per_loc *. float_of_int fw.Compile.fw_loc)

(* Resident set of the sequential compiler while compiling the [k]-th
   function: the Lisp process holds the whole module's AST, everything
   it retained from functions already compiled, and the live data of the
   function at hand. *)
let sequential_mb m (mw : Compile.module_work) ~compiled_loc ~current_loc =
  m.lisp_core_mb
  +. (m.ast_mb_per_loc *. float_of_int mw.Compile.mw_loc)
  +. min m.parse_garbage_cap_mb
       (m.parse_garbage_mb_per_loc *. float_of_int mw.Compile.mw_loc)
  +. (m.retained_mb_per_loc *. float_of_int compiled_loc)
  +. (m.data_mb_per_loc *. float_of_int current_loc)

(* Slowdown factor for a process given the workstation's residency.
   Garbage collection ramps up as the heap fills.  Paging on a diskless
   workstation goes through the shared file server, so its cost grows
   with the square of the number of stations paging at the same time —
   the mechanism behind the parallel compiler's system overhead on
   memory-hungry functions. *)
let slowdown m ~pressure ~pagers =
  let gc = m.gc_slope *. max 0.0 (pressure -. m.gc_knee) in
  let k = float_of_int (max 1 pagers) in
  let paging = m.page_coeff *. max 0.0 (pressure -. 1.0) *. k *. k in
  min m.max_slowdown (1.0 +. gc +. paging)

let source_bytes m (loc : int) = m.source_bytes_per_loc *. float_of_int loc

(* --- fine-grained split of the per-function work (section 5's "finer
   grain parallelism" extension): phase 2 and phase 3 as separate
   tasks, connected by shipping the optimized IR over the network. --- *)

let phase2_seconds m (fw : Compile.func_work) =
  (0.5 *. m.func_fixed_seconds)
  +. (m.sec_per_opt_unit *. float_of_int fw.Compile.fw_opt_work)

let phase3_seconds m (fw : Compile.func_work) =
  (0.5 *. m.func_fixed_seconds)
  +. (m.sec_per_sched_unit *. float_of_int fw.Compile.fw_sched_work)
  +. (m.sec_per_wide *. float_of_int fw.Compile.fw_wides)

(* Size of a serialized optimized-IR file (phase-2 output handed to a
   phase-3 master). *)
let ir_bytes (fw : Compile.func_work) = 56.0 *. float_of_int fw.Compile.fw_ir_instrs
