(** The four-phase compiler pipeline (paper, section 3.2) with
    work-unit accounting.

    Running the real compiler yields deterministic work counts per
    phase and per function; {!Cost} converts them into simulated 1989
    seconds.  Phase 1 (parse + semantic check) and phase 4 (assembly,
    linking, I/O drivers) are module/section-level; phases 2 (flowgraph
    + optimizer) and 3 (software pipelining + code generation) are the
    per-function work the parallel compiler distributes. *)

exception Compile_error of string
(** Phase-1 failure: the master aborts the compilation. *)

type func_work = {
  fw_name : string;
  fw_section : string;
  fw_loc : int; (** source lines — the paper's size metric *)
  fw_tokens : int; (** tokens of this function's own source text *)
  fw_ast_nodes : int;
  fw_ir_instrs : int; (** after lowering, before optimization *)
  fw_opt_work : int; (** phase-2 work units *)
  fw_sched_work : int; (** phase-3 work units *)
  fw_wides : int; (** code size in wide instructions *)
  fw_pipelined : int; (** loops software-pipelined *)
  fw_spilled : int;
  fw_static_units : int option;
      (** statically bounded statement executions of one call, from the
          abstract interpretation's cost domain ({!Analysis.Absint});
          what [--static-cost] scheduling ranks by.  [None] when the
          refinement is off *)
  fw_key : string option;
      (** content-addressed compile-cache key of this function's
          phase-2/3 artifact ({!Analysis.Depan.cache_keys}): salted
          with the optimization configuration and closed over the
          function's dependence ancestry.  [None] when the section was
          compiled without the phase-1 analysis; such functions never
          hit the cache *)
  fw_diags : W2.Diag.t list;
      (** findings this function's master reports back to its section
          master (lint warnings from phase 1, verifier findings) *)
}

type section_work = {
  sw_name : string;
  sw_funcs : func_work list;
  sw_image : Warp.Mcode.image;
  sw_image_bytes : int;
  sw_driver : Warp.Iodriver.t;
  sw_diags : W2.Diag.t list;
      (** combined per-function diagnostics, in file order — the
          section master's "combine results and diagnostics" step *)
}

type module_work = {
  mw_name : string;
  mw_loc : int;
  mw_tokens : int; (** lexed tokens of the whole module: phase 1 *)
  mw_sections : section_work list;
  mw_analysis : Analysis.Depan.t;
      (** whole-module dependence analysis (phase 1, sequential
          master): {!Plan} derives the task DAG from it; the analysis
          itself charges no simulated time *)
}

val count_tokens : string -> int

val func_rets_of :
  W2.Ast.section -> (string, Midend.Ir.ty option) Hashtbl.t
(** Return types of a section's functions — the context
    {!Midend.Lower.lower_function} needs. *)

val compile_function :
  ?level:int ->
  ?verify_each:bool ->
  ?diags:W2.Diag.t list ->
  ?globals:W2.Ast.decl list ->
  ?static_units:int ->
  ?key:string ->
  func_rets:(string, Midend.Ir.ty option) Hashtbl.t ->
  section:string ->
  W2.Ast.func ->
  func_work * Warp.Mcode.mfunc * Midend.Ir.func
(** Phases 2 and 3 for one (checked) function.  The IR verifier runs
    unconditionally on the optimized IR (end of phase 2); with
    [~verify_each:true] it also runs after every optimization pass.
    [diags] are phase-1 findings to attach to the function's work
    record; [globals] are the enclosing section's global declarations
    (needed to lower references to them).  The returned IR is the
    post-optimization flowgraph.
    @raise Compile_error when verification fails (a miscompiling
    pass). *)

val compile_section :
  ?level:int ->
  ?verify_each:bool ->
  ?depan:Analysis.Depan.section_info ->
  W2.Ast.section ->
  section_work
(** Phases 2-4 for one section: lints the section (phase 1), compiles
    every function, then runs the verifier's cross-function call check
    over the optimized section.  With [depan] (the analyzer's summary
    of this section) the lint stream also carries the coupling
    warnings W008/W009, and the analyzer's AST-vs-IR call cross-check
    runs after the verifier's. *)

val compile_source :
  ?level:int ->
  ?verify_each:bool ->
  ?file:string ->
  ?max_tracked:int ->
  ?absint:bool ->
  ?absint_max_intervals:int ->
  string ->
  module_work
(** The whole compiler, from source text.  [absint] (default [true])
    runs the abstract-interpretation refinement inside the phase-1
    dependence analysis; with [~absint:false] the analysis — and every
    timing derived from it — is bit-identical to the pre-absint
    compiler.  [max_tracked] caps the analyzer's per-summary global
    tracking ({!Analysis.Depan.analyze}); lowering it manufactures
    [summary_limit]-pinned sections, the speculation experiments'
    worst-case input.
    @raise Compile_error on phase-1 failure. *)

val compile_module :
  ?level:int ->
  ?verify_each:bool ->
  ?max_tracked:int ->
  ?absint:bool ->
  W2.Ast.modul ->
  module_work
(** Convenience: pretty-print the AST so the token count reflects a
    real source file, then {!compile_source}. *)

val all_funcs : module_work -> func_work list
val total_image_bytes : module_work -> int

val all_diags : module_work -> W2.Diag.t list
(** Every diagnostic of the module, merged in file order — what the
    master prints after combining the section masters' results. *)
