#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Scans the top-level docs and everything under docs/ for markdown links
and inline file references, and fails when a relative link points at a
file that does not exist.  External URLs (http/https/mailto) and pure
fragments are not fetched or checked.

Run from the repository root:  python3 tools/check_links.py
"""

import os
import re
import sys

DOC_GLOBS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    for name in DOC_GLOBS:
        if os.path.exists(name):
            yield name
    for entry in sorted(os.listdir("docs")):
        if entry.endswith(".md"):
            yield os.path.join("docs", entry)


def check_file(path):
    broken = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target = target.split("#", 1)[0]
                if not target:  # pure fragment: same-file anchor
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target)
                )
                if not os.path.exists(resolved):
                    broken.append((lineno, target, resolved))
    return broken


def main():
    if not os.path.exists("dune-project"):
        sys.exit("run from the repository root")
    total_links = 0
    failures = []
    for path in doc_files():
        broken = check_file(path)
        with open(path, encoding="utf-8") as f:
            total_links += sum(len(LINK_RE.findall(l)) for l in f)
        for lineno, target, resolved in broken:
            failures.append(f"{path}:{lineno}: broken link '{target}' -> {resolved}")
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        sys.exit(f"{len(failures)} broken link(s)")
    print(f"checked {total_links} links across {len(list(doc_files()))} files: ok")


if __name__ == "__main__":
    main()
