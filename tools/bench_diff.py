#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts with per-metric thresholds.

The bench sweeps are seeded discrete-event simulations, so by default a
committed artifact must reproduce bit for bit (--exact is therefore the
common CI mode and the default).  When a sweep is deliberately noisy,
per-metric relative thresholds loosen individual numeric leaves:

    bench_diff.py committed.json fresh.json \
        --threshold elapsed=0.05 --threshold speedup=0.10

matches each numeric leaf by its innermost key name.  Structure
(object keys, array lengths), strings and booleans always compare
exactly, and the top-level "schema" fields must agree before anything
else is looked at.  Exit status: 0 = match, 1 = diff (every differing
path is printed), 2 = usage or unreadable input.
"""

import argparse
import json
import sys


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def rel_diff(a, b):
    denom = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / denom


class Differ:
    def __init__(self, thresholds, default_threshold):
        self.thresholds = thresholds
        self.default = default_threshold
        self.failures = []

    def fail(self, path, msg):
        self.failures.append(f"  {path or '$'}: {msg}")

    def threshold_for(self, key):
        return self.thresholds.get(key, self.default)

    def compare(self, path, key, a, b):
        if is_number(a) and is_number(b):
            if a == b:
                return
            t = self.threshold_for(key)
            d = rel_diff(a, b)
            if d > t:
                self.fail(
                    path,
                    f"{a!r} != {b!r} (rel diff {d:.3e} > threshold {t:g})",
                )
        elif isinstance(a, dict) and isinstance(b, dict):
            for k in sorted(set(a) | set(b)):
                sub = f"{path}.{k}" if path else k
                if k not in a:
                    self.fail(sub, "only in the fresh file")
                elif k not in b:
                    self.fail(sub, "only in the committed file")
                else:
                    self.compare(sub, k, a[k], b[k])
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                self.fail(path, f"length {len(a)} != {len(b)}")
                return
            for i, (x, y) in enumerate(zip(a, b)):
                self.compare(f"{path}[{i}]", key, x, y)
        elif type(a) is not type(b):
            self.fail(path, f"type {type(a).__name__} != {type(b).__name__}")
        elif a != b:
            self.fail(path, f"{a!r} != {b!r}")


def parse_threshold(spec):
    key, sep, val = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=REL_DIFF, got {spec!r}"
        )
    try:
        rel = float(val)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad threshold value in {spec!r}")
    if rel < 0.0:
        raise argparse.ArgumentTypeError(f"negative threshold in {spec!r}")
    return key, rel


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("committed", help="the committed (baseline) artifact")
    ap.add_argument("fresh", help="the freshly generated artifact")
    ap.add_argument(
        "--exact",
        action="store_true",
        help="force every numeric leaf to compare exactly "
        "(overrides all thresholds)",
    )
    ap.add_argument(
        "--threshold",
        metavar="KEY=REL_DIFF",
        type=parse_threshold,
        action="append",
        default=[],
        help="relative threshold for numeric leaves whose innermost key "
        "is KEY (repeatable)",
    )
    ap.add_argument(
        "--default-threshold",
        metavar="REL_DIFF",
        type=float,
        default=0.0,
        help="relative threshold for numeric leaves without a --threshold "
        "entry (default 0.0 = exact)",
    )
    args = ap.parse_args()

    def load(path):
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)

    committed = load(args.committed)
    fresh = load(args.fresh)

    cs = committed.get("schema") if isinstance(committed, dict) else None
    fs = fresh.get("schema") if isinstance(fresh, dict) else None
    if cs != fs or cs is None:
        print(f"bench_diff: schema mismatch: {cs!r} vs {fs!r}")
        sys.exit(1)

    thresholds = {} if args.exact else dict(args.threshold)
    default = 0.0 if args.exact else args.default_threshold
    d = Differ(thresholds, default)
    d.compare("", None, fresh, committed)

    if d.failures:
        print(
            f"bench_diff: {args.fresh} drifted from {args.committed} "
            f"({len(d.failures)} difference(s)):"
        )
        for line in d.failures:
            print(line)
        sys.exit(1)
    print(f"bench_diff: {args.fresh} matches {args.committed} (schema {cs})")


if __name__ == "__main__":
    main()
