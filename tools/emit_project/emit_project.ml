(* Emit a generated multi-module W2 project as one .w2 file per module
   — the on-disk input `warpcc analyze --project` consumes.  Used by
   the CI link smoke job and handy for poking at the cross-module
   analysis by hand.

     emit_project DIR SHAPE MODULES [SEED]

   SHAPE is layered | diamond | clustered (W2.Gen.shape_of_string);
   SEED defaults to 1, matching the benchmark sweeps. *)

let usage () =
  prerr_endline "usage: emit_project DIR layered|diamond|clustered MODULES [SEED]";
  exit 2

let () =
  if Array.length Sys.argv < 4 then usage ();
  let dir = Sys.argv.(1) in
  let shape =
    match W2.Gen.shape_of_string Sys.argv.(2) with
    | Some s -> s
    | None -> usage ()
  in
  let modules = int_of_string Sys.argv.(3) in
  let seed =
    if Array.length Sys.argv > 4 then int_of_string Sys.argv.(4) else 1
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (m : W2.Ast.modul) ->
      let path = Filename.concat dir (m.W2.Ast.mname ^ ".w2") in
      let oc = open_out path in
      output_string oc (W2.Pretty.module_to_string m);
      close_out oc)
    (W2.Gen.project_program ~modules ~seed ~shape ());
  Printf.printf "wrote %d modules to %s\n" modules dir
