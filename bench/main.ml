(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 4) on the simulated 1989 host, plus Bechamel
   micro-benchmarks of the real compiler phases.

   Usage:
     main.exe                 all figures, ablations, Bechamel benches
     main.exe fig3 ... fig16  individual figures
     main.exe saturation      section 4.2.2 processor-saturation sweep
     main.exe ablations       DESIGN.md section-5 ablations
     main.exe summary         the abstract's headline numbers
     main.exe faults          seeded fault/recovery sweep (docs/FAULTS.md)
     main.exe sched           scheduling-policy sweep + BENCH_sched.json
     main.exe deps            dependence-aware dispatch sweep + BENCH_deps.json
     main.exe absint          abstract-interpretation pruning sweep
                              + BENCH_absint.json
     main.exe spec            speculative-dispatch sweep + BENCH_spec.json
     main.exe profile         critical-path attribution sweep + BENCH_profile.json
     main.exe cache           compile-cache cold/warm/one-edit sweep
                              + BENCH_cache.json
     main.exe json            write machine-readable BENCH_parallel.json
     main.exe trace           traced parallel run: warpcc_trace.json + Gantt
     main.exe bechamel        only the micro-benchmarks
     main.exe --help          the full target table (see [targets] below)

   The flag --out PATH redirects the JSON writer of a single-target
   invocation (e.g. main.exe spec --out /tmp/spec.json); without it
   every writer keeps its default BENCH_*.json filename, which the CI
   regression gates depend on.
*)

open Parallel_cc

let t = Stats.Table.make

(* Experiment results are deterministic; compute one series per size. *)
let series_cache : (W2.Gen.size, Experiment.point list) Hashtbl.t = Hashtbl.create 5

let points_for size =
  match Hashtbl.find_opt series_cache size with
  | Some points -> points
  | None ->
    let points = Experiment.size_series size in
    Hashtbl.replace series_cache size points;
    points

let point_at size n =
  List.find (fun (p : Experiment.point) -> p.Experiment.n_functions = n) (points_for size)

let minutes x = x /. 60.0

(* --- figures 3, 4, 5, 12, 13: execution times --- *)

let print_time_series ~fig (size : W2.Gen.size) =
  let points = points_for size in
  let table =
    t
      ~title:
        (Printf.sprintf "Figure %s: execution times for %s (minutes)" fig
           (W2.Gen.size_name size))
      ~columns:
        [ "functions"; "elapsed seq"; "cpu seq"; "elapsed par"; "cpu par (max/proc)" ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.point) ->
        let c = p.Experiment.comparison in
        Stats.Table.add_float_row table
          ~label:(string_of_int p.Experiment.n_functions)
          [
            minutes c.Timings.seq.Timings.elapsed;
            minutes (Timings.max_cpu c.Timings.seq);
            minutes c.Timings.par.Timings.elapsed;
            minutes (Timings.max_cpu c.Timings.par);
          ])
      table points
  in
  Stats.Table.print table;
  print_newline ()

(* --- figure 6: speedup over the sequential compiler --- *)

let print_fig6 () =
  let table =
    t ~title:"Figure 6: speedup over sequential compiler"
      ~columns:("functions" :: List.map W2.Gen.size_name W2.Gen.all_sizes)
  in
  let table =
    List.fold_left
      (fun table n ->
        let row =
          List.map
            (fun size -> (point_at size n).Experiment.comparison.Timings.speedup)
            W2.Gen.all_sizes
        in
        Stats.Table.add_float_row table ~label:(string_of_int n) row)
      table Experiment.function_counts
  in
  Stats.Table.print table;
  print_newline ()

(* --- figure 7: speedup versus function size --- *)

let print_fig7 () =
  let table =
    t ~title:"Figure 7: speedup versus function size (lines of code)"
      ~columns:
        ("lines"
        :: List.map (fun n -> Printf.sprintf "%d function(s)" n) Experiment.function_counts)
  in
  let table =
    List.fold_left
      (fun table size ->
        let row =
          List.map
            (fun n -> (point_at size n).Experiment.comparison.Timings.speedup)
            Experiment.function_counts
        in
        Stats.Table.add_float_row table
          ~label:(string_of_int (W2.Gen.size_lines size))
          row)
      table W2.Gen.all_sizes
  in
  Stats.Table.print table;
  print_newline ()

(* --- figures 8-10: relative overheads; 14-16: absolute overheads --- *)

let overhead_columns sizes kind =
  "functions"
  :: List.concat_map
       (fun size ->
         [
           Printf.sprintf "%s total%s" (W2.Gen.size_name size) kind;
           Printf.sprintf "%s system%s" (W2.Gen.size_name size) kind;
         ])
       sizes

let print_overheads ~fig ~relative sizes =
  let kind = if relative then " %" else " (s)" in
  let what = if relative then "percentage of parallel elapsed time" else "seconds" in
  let table =
    t
      ~title:
        (Printf.sprintf "Figure %s: %s overhead (%s)" fig
           (if relative then "relative" else "absolute")
           what)
      ~columns:(overhead_columns sizes kind)
  in
  let table =
    List.fold_left
      (fun table n ->
        let row =
          List.concat_map
            (fun size ->
              let c = (point_at size n).Experiment.comparison in
              if relative then [ c.Timings.rel_total_overhead; c.Timings.rel_sys_overhead ]
              else [ c.Timings.total_overhead; c.Timings.sys_overhead ])
            sizes
        in
        Stats.Table.add_float_row table ~label:(string_of_int n) row)
      table Experiment.function_counts
  in
  Stats.Table.print table;
  print_newline ()

(* --- figure 11: the user program --- *)

let print_fig11 () =
  let points = Experiment.user_program () in
  let table =
    t
      ~title:
        "Figure 11: speedup for a user program (3 sections x 3 functions, \
         grouped by the load-balancing heuristic)"
      ~columns:[ "processors"; "elapsed seq (min)"; "elapsed par (min)"; "speedup" ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.point) ->
        let c = p.Experiment.comparison in
        Stats.Table.add_float_row table
          ~label:(string_of_int p.Experiment.n_functions)
          [
            minutes c.Timings.seq.Timings.elapsed;
            minutes c.Timings.par.Timings.elapsed;
            c.Timings.speedup;
          ])
      table points
  in
  Stats.Table.print table;
  print_newline ()

(* --- section 4.2.2: saturation --- *)

let print_saturation () =
  let points = Experiment.saturation () in
  let table =
    t
      ~title:
        "Saturation (cf. section 4.2.2): elapsed time of S_8 f_medium versus \
         workstation pool size"
      ~columns:[ "stations"; "elapsed par (min)" ]
  in
  let table =
    List.fold_left
      (fun table (stations, elapsed) ->
        Stats.Table.add_float_row table ~label:(string_of_int stations)
          [ minutes elapsed ])
      table points
  in
  Stats.Table.print table;
  print_newline ()

(* --- ablations --- *)

let print_ablations () =
  let table =
    t ~title:"Ablations (DESIGN.md section 5): what breaks each paper phenomenon"
      ~columns:
        [
          "configuration";
          "medium n=1 sys ov %";
          "tiny n=4 speedup";
          "huge n=8 rel ov %";
          "large n=8 speedup";
        ]
  in
  let table =
    List.fold_left
      (fun table (ab : Experiment.ablation) ->
        let cfg = ab.Experiment.ab_cfg in
        let med =
          Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Medium ~count:1 ())
        in
        let tiny =
          Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 ())
        in
        let huge =
          Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Huge ~count:8 ())
        in
        let large =
          Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Large ~count:8 ())
        in
        Stats.Table.add_float_row table ~label:ab.Experiment.ab_name
          [
            med.Timings.rel_sys_overhead;
            tiny.Timings.speedup;
            huge.Timings.rel_total_overhead;
            large.Timings.speedup;
          ])
      table Experiment.ablations
  in
  Stats.Table.print table;
  print_newline ();
  (* Grouping ablation: the section-4.3 heuristic versus one function
     per processor on the user program. *)
  let mw = Experiment.user_program_work () in
  let grouped5 = Experiment.measure ~processors:5 mw in
  let one_per = Experiment.measure mw in
  let table2 = t ~title:"Ablation: load balancing on the user program"
      ~columns:[ "policy"; "processors"; "speedup" ] in
  let table2 =
    Stats.Table.add_float_row table2 ~label:"one function per processor"
      [ float_of_int one_per.Timings.processors; one_per.Timings.speedup ]
  in
  let table2 =
    Stats.Table.add_float_row table2 ~label:"grouped (LoC x nesting, LPT)"
      [ float_of_int grouped5.Timings.processors; grouped5.Timings.speedup ]
  in
  Stats.Table.print table2;
  print_newline ()

(* --- section 3.4: parallel make coexistence --- *)

let print_make_study () =
  let results = Experiment.run_make_study () in
  let table =
    t
      ~title:
        "Build strategies for a 4-module system (cf. section 3.4: 'both          approaches could coexist')"
      ~columns:[ "strategy"; "elapsed (min)" ]
  in
  let table =
    List.fold_left
      (fun table (r : Makerun.result) ->
        Stats.Table.add_float_row table
          ~label:(Makerun.strategy_name r.Makerun.strategy)
          [ minutes r.Makerun.elapsed ])
      table results
  in
  Stats.Table.print table;
  print_newline ()

(* --- section 5: finer-grain parallelism --- *)

let print_grain_study () =
  let points = Experiment.run_grain_study () in
  let table =
    t
      ~title:
        "Finer grain (phase-pipelined) vs the paper's coarse grain, S_8          f_medium (cf. section 5: 'further advances have to explore finer          grain parallelism')"
      ~columns:[ "stations"; "coarse (min)"; "fine (min)" ]
  in
  let table =
    List.fold_left
      (fun table (g : Experiment.grain_point) ->
        Stats.Table.add_float_row table
          ~label:(string_of_int g.Experiment.gp_stations)
          [ minutes g.Experiment.coarse; minutes g.Experiment.fine ])
      table points
  in
  Stats.Table.print table;
  print_endline
    "On this host the extra Lisp startup and IR shipping outweigh the";
  print_endline
    "stage pipelining — which is exactly why the authors chose functions";
  print_endline "as the grain (section 3.3).";
  print_newline ()

(* --- section 5.1: inlining --- *)

let print_inlining_study () =
  let study = Experiment.run_inlining_study () in
  let table =
    t ~title:"Inlining as grain coarsening (section 5.1)"
      ~columns:[ "variant"; "functions"; "seq (min)"; "par (min)"; "speedup" ]
  in
  let row name funcs (c : Timings.comparison) table =
    Stats.Table.add_float_row table ~label:name
      [
        float_of_int funcs;
        minutes c.Timings.seq.Timings.elapsed;
        minutes c.Timings.par.Timings.elapsed;
        c.Timings.speedup;
      ]
  in
  let table = row "as written" study.Experiment.baseline_functions study.Experiment.baseline table in
  let table = row "inlined + pruned" study.Experiment.inlined_functions study.Experiment.inlined table in
  Stats.Table.print table;
  print_newline ()

(* --- section 6: scaling limit --- *)

let print_scaling () =
  let unlimited = Experiment.run_scaling_study () in
  let capped = Experiment.run_scaling_study ~max_stations:15 () in
  let table =
    t
      ~title:
        "Scaling (section 6: '8 to 16 processors can be used comfortably'),          f_large"
      ~columns:
        [ "functions"; "speedup (pool = n)"; "efficiency"; "speedup (pool <= 15)" ]
  in
  let table =
    List.fold_left2
      (fun table (u : Experiment.point) (c : Experiment.point) ->
        let su = u.Experiment.comparison.Timings.speedup in
        Stats.Table.add_float_row table
          ~label:(string_of_int u.Experiment.n_functions)
          [
            su;
            su /. float_of_int u.Experiment.n_functions;
            c.Experiment.comparison.Timings.speedup;
          ])
      table unlimited capped
  in
  Stats.Table.print table;
  print_newline ()

(* --- fault tolerance: the chaos sweep --- *)

let fault_points_cache = ref None

let fault_points () =
  match !fault_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.fault_sweep () in
    fault_points_cache := Some points;
    points

let print_fault_sweep () =
  let table =
    t
      ~title:
        "Fault sweep: S_8 f_medium under seeded crash/reclaim/slowdown plans          (inflation = elapsed / fault-free elapsed on the same pool)"
      ~columns:
        [
          "stations @ rate";
          "elapsed (min)";
          "inflation";
          "retries";
          "fallbacks";
          "lost";
          "wasted cpu (min)";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.fault_point) ->
        Stats.Table.add_float_row table
          ~label:
            (Printf.sprintf "%2d @ %.2f" p.Experiment.fp_stations
               p.Experiment.fp_rate)
          [
            minutes p.Experiment.fp_elapsed;
            p.Experiment.fp_inflation;
            float_of_int p.Experiment.fp_retries;
            float_of_int p.Experiment.fp_fallbacks;
            float_of_int p.Experiment.fp_lost;
            minutes p.Experiment.fp_wasted_cpu;
          ])
      table (fault_points ())
  in
  Stats.Table.print table;
  print_newline ()

(* --- machine-readable perf trajectories: the BENCH_*.json emitter --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [--out PATH] redirects the next writer; [None] keeps the default
   filename (which CI's regression gates key on). *)
let out_override : string option ref = ref None

(* Every BENCH_*.json writer funnels through this emitter: it owns the
   buffer, the schema header, the enclosing braces, the output file and
   the "wrote ..." log line.  [body b] appends the schema-specific
   fields with {!bpr}; arrays go through {!json_array} so the comma
   discipline lives in one place. *)
let bpr b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let json_array b ~key items row =
  bpr b ",\n  \"%s\": [\n" key;
  let first = ref true in
  List.iter
    (fun x ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "    ";
      row x)
    items;
  Buffer.add_string b "\n  ]"

let write_json ~schema ~default ~summary body =
  let b = Buffer.create 4096 in
  bpr b "{\n";
  bpr b "  \"schema\": \"%s\"" (json_escape schema);
  body b;
  bpr b "\n}\n";
  let path = Option.value !out_override ~default in
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s (%s)\n\n" path summary

(* --- scheduling policies: FCFS vs LPT vs LPT + tiny batching --- *)

let sched_points_cache = ref None

let sched_points () =
  match !sched_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.sched_sweep () in
    sched_points_cache := Some points;
    points

let print_sched_sweep () =
  let table =
    t
      ~title:
        (Printf.sprintf
           "Scheduling policies on oversubscribed pools (batch threshold %.0f s;          speedup = FCFS elapsed / policy elapsed on the same point)"
           Config.default.Config.batch_threshold)
      ~columns:
        [ "series @ policy"; "pool"; "units"; "elapsed (min)"; "speedup vs fcfs" ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.sched_point) ->
        Stats.Table.add_float_row table
          ~label:
            (Printf.sprintf "%-8s @ %s" p.Experiment.sp_series
               (Sched.policy_name p.Experiment.sp_policy))
          [
            float_of_int p.Experiment.sp_pool;
            float_of_int p.Experiment.sp_units;
            minutes p.Experiment.sp_elapsed;
            p.Experiment.sp_speedup_vs_fcfs;
          ])
      table (sched_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_sched_json () =
  let points = sched_points () in
  write_json ~schema:"warpcc-bench-sched/1" ~default:"BENCH_sched.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      bpr b ",\n  \"batch_threshold\": %.1f"
        Config.default.Config.batch_threshold;
      json_array b ~key:"points" points
        (fun (p : Experiment.sched_point) ->
          bpr b
            "{\"series\": \"%s\", \"policy\": \"%s\", \"pool\": %d, \
             \"dispatch_units\": %d, \"elapsed\": %.3f, \"speedup_vs_fcfs\": \
             %.4f}"
            (json_escape p.Experiment.sp_series)
            (json_escape (Sched.policy_name p.Experiment.sp_policy))
            p.Experiment.sp_pool p.Experiment.sp_units p.Experiment.sp_elapsed
            p.Experiment.sp_speedup_vs_fcfs))

(* --- dependence-aware dispatch: FCFS vs DAG vs DAG + LPT --- *)

let dag_points_cache = ref None

let dag_points () =
  match !dag_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.dag_sweep () in
    dag_points_cache := Some points;
    points

let print_dag_sweep () =
  let table =
    t
      ~title:
        "Dependence-aware dispatch (licensed = fraction of same-section         function pairs the analyzer lets overlap; speedup = FCFS         elapsed / policy elapsed on the same point)"
      ~columns:
        [
          "series @ policy";
          "pool";
          "units";
          "edges";
          "licensed";
          "elapsed (min)";
          "speedup vs fcfs";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.dag_point) ->
        Stats.Table.add_float_row table
          ~label:
            (Printf.sprintf "%-8s @ %s" p.Experiment.dg_series
               (Sched.policy_name p.Experiment.dg_policy))
          [
            float_of_int p.Experiment.dg_pool;
            float_of_int p.Experiment.dg_units;
            float_of_int p.Experiment.dg_edges;
            p.Experiment.dg_licensed;
            minutes p.Experiment.dg_elapsed;
            p.Experiment.dg_speedup_vs_fcfs;
          ])
      table (dag_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_deps_json () =
  let points = dag_points () in
  write_json ~schema:"warpcc-bench-deps/1" ~default:"BENCH_deps.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      bpr b ",\n  \"batch_threshold\": %.1f"
        Config.default.Config.batch_threshold;
      json_array b ~key:"points" points
        (fun (p : Experiment.dag_point) ->
          bpr b
            "{\"series\": \"%s\", \"policy\": \"%s\", \"pool\": %d, \
             \"dispatch_units\": %d, \"edges\": %d, \"licensed_fraction\": \
             %.4f, \"elapsed\": %.3f, \"speedup_vs_fcfs\": %.4f}"
            (json_escape p.Experiment.dg_series)
            (json_escape (Sched.policy_name p.Experiment.dg_policy))
            p.Experiment.dg_pool p.Experiment.dg_units p.Experiment.dg_edges
            p.Experiment.dg_licensed p.Experiment.dg_elapsed
            p.Experiment.dg_speedup_vs_fcfs))

(* --- abstract-interpretation refinement: pruning, end to end --- *)

let absint_points_cache = ref None

let absint_points () =
  match !absint_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.absint_sweep () in
    absint_points_cache := Some points;
    points

let print_absint_sweep () =
  let table =
    t
      ~title:
        "Abstract-interpretation refinement (edges/licensed: base analysis         -> after pruning; elapsed under dag+lpt; races = dynamic ordering         violations on the pruned run, always 0)"
      ~columns:
        [
          "series";
          "funcs";
          "edges off";
          "edges on";
          "pruned";
          "licensed off";
          "licensed on";
          "elapsed off (min)";
          "elapsed on (min)";
          "speedup";
          "races";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.absint_point) ->
        Stats.Table.add_float_row table ~label:p.Experiment.ap_series
          [
            float_of_int p.Experiment.ap_functions;
            float_of_int p.Experiment.ap_edges_off;
            float_of_int p.Experiment.ap_edges_on;
            float_of_int p.Experiment.ap_pruned;
            p.Experiment.ap_licensed_off;
            p.Experiment.ap_licensed_on;
            minutes p.Experiment.ap_elapsed_off;
            minutes p.Experiment.ap_elapsed_on;
            p.Experiment.ap_speedup;
            float_of_int p.Experiment.ap_race_violations;
          ])
      table (absint_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_absint_json () =
  let points = absint_points () in
  write_json ~schema:"warpcc-bench-absint/1" ~default:"BENCH_absint.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      bpr b ",\n  \"pool\": 4";
      json_array b ~key:"points" points
        (fun (p : Experiment.absint_point) ->
          bpr b
            "{\"series\": \"%s\", \"functions\": %d, \"edges_off\": %d, \
             \"edges_on\": %d, \"pruned\": %d, \"licensed_off\": %.4f, \
             \"licensed_on\": %.4f, \"elapsed_off\": %.3f, \"elapsed_on\": \
             %.3f, \"speedup\": %.4f, \"race_violations\": %d}"
            (json_escape p.Experiment.ap_series)
            p.Experiment.ap_functions p.Experiment.ap_edges_off
            p.Experiment.ap_edges_on p.Experiment.ap_pruned
            p.Experiment.ap_licensed_off p.Experiment.ap_licensed_on
            p.Experiment.ap_elapsed_off p.Experiment.ap_elapsed_on
            p.Experiment.ap_speedup p.Experiment.ap_race_violations))

(* --- speculative dispatch: dag+lpt versus dag+spec --- *)

let spec_points_cache = ref None

let spec_points () =
  match !spec_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.spec_sweep () in
    spec_points_cache := Some points;
    points

let print_spec_sweep () =
  let table =
    t
      ~title:
        "Speculative dispatch (spec/hot = speculative and genuinely         conflicting edges in the plan; speedup = dag+lpt elapsed /         dag+spec elapsed; races = commit-protocol ordering violations,         always 0)"
      ~columns:
        [
          "series";
          "funcs";
          "spec edges";
          "hot edges";
          "lpt (min)";
          "spec (min)";
          "speedup";
          "dispatched";
          "committed";
          "rolled back";
          "races";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.spec_point) ->
        Stats.Table.add_float_row table ~label:p.Experiment.zp_series
          [
            float_of_int p.Experiment.zp_functions;
            float_of_int p.Experiment.zp_spec_edges;
            float_of_int p.Experiment.zp_hot_edges;
            minutes p.Experiment.zp_elapsed_lpt;
            minutes p.Experiment.zp_elapsed_spec;
            p.Experiment.zp_speedup;
            float_of_int p.Experiment.zp_dispatched;
            float_of_int p.Experiment.zp_committed;
            float_of_int p.Experiment.zp_rolled_back;
            float_of_int p.Experiment.zp_race_violations;
          ])
      table (spec_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_spec_json () =
  let points = spec_points () in
  write_json ~schema:"warpcc-bench-spec/1" ~default:"BENCH_spec.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      bpr b ",\n  \"spec_budget\": %d" Config.default.Config.spec_budget;
      json_array b ~key:"points" points
        (fun (p : Experiment.spec_point) ->
          bpr b
            "{\"series\": \"%s\", \"functions\": %d, \"spec_edges\": %d, \
             \"hot_edges\": %d, \"elapsed_lpt\": %.3f, \"elapsed_spec\": \
             %.3f, \"speedup\": %.4f, \"spec_dispatched\": %d, \
             \"spec_committed\": %d, \"spec_rolled_back\": %d, \
             \"race_violations\": %d}"
            (json_escape p.Experiment.zp_series)
            p.Experiment.zp_functions p.Experiment.zp_spec_edges
            p.Experiment.zp_hot_edges p.Experiment.zp_elapsed_lpt
            p.Experiment.zp_elapsed_spec p.Experiment.zp_speedup
            p.Experiment.zp_dispatched p.Experiment.zp_committed
            p.Experiment.zp_rolled_back p.Experiment.zp_race_violations))

(* --- critical-path profile: where does the second go --- *)

let profile_points_cache = ref None

let profile_points () =
  match !profile_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.profile_sweep () in
    profile_points_cache := Some points;
    points

let print_profile_sweep () =
  let table =
    t
      ~title:
        "Critical-path attribution (buckets fold to elapsed exactly;         dominant = largest bucket: shrinking the pool shifts it from         compute toward pool-wait)"
      ~columns:
        [
          "series @ policy";
          "pool";
          "segs";
          "elapsed (min)";
          "cpu %";
          "pool %";
          "comms %";
          "dominant";
        ]
  in
  let share buckets name elapsed =
    100.0 *. List.assoc name buckets /. elapsed
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.profile_point) ->
        Stats.Table.add_row table
          [
            Printf.sprintf "%-8s @ %s" p.Experiment.fp_series
              (Sched.policy_name p.Experiment.fp_policy);
            string_of_int p.Experiment.fp_pool;
            string_of_int p.Experiment.fp_segments;
            Printf.sprintf "%.2f" (minutes p.Experiment.fp_elapsed);
            Printf.sprintf "%.1f"
              (share p.Experiment.fp_buckets "cpu" p.Experiment.fp_elapsed);
            Printf.sprintf "%.1f"
              (share p.Experiment.fp_buckets "pool_wait"
                 p.Experiment.fp_elapsed);
            Printf.sprintf "%.1f"
              (share p.Experiment.fp_buckets "ether" p.Experiment.fp_elapsed
              +. share p.Experiment.fp_buckets "fs" p.Experiment.fp_elapsed);
            p.Experiment.fp_dominant;
          ])
      table (profile_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_profile_json () =
  let points = profile_points () in
  write_json ~schema:"warpcc-bench-profile/1" ~default:"BENCH_profile.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      (* Buckets round-trip at full precision so consumers can re-fold
         them and reproduce the elapsed time bit for bit. *)
      json_array b ~key:"points" points
        (fun (p : Experiment.profile_point) ->
          bpr b
            "{\"series\": \"%s\", \"policy\": \"%s\", \"pool\": %d, \
             \"segments\": %d, \"dominant\": \"%s\", \"elapsed\": %.17g, \
             \"buckets\": {"
            (json_escape p.Experiment.fp_series)
            (json_escape (Sched.policy_name p.Experiment.fp_policy))
            p.Experiment.fp_pool p.Experiment.fp_segments
            (json_escape p.Experiment.fp_dominant)
            p.Experiment.fp_elapsed;
          List.iteri
            (fun i (name, v) ->
              bpr b "%s\"%s\": %.17g"
                (if i = 0 then "" else ", ")
                (json_escape name) v)
            p.Experiment.fp_buckets;
          bpr b "}}"))

(* --- content-addressed compile cache: cold / warm / one-edit --- *)

let cache_points_cache = ref None

let cache_points () =
  match !cache_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.cache_sweep () in
    cache_points_cache := Some points;
    points

let print_cache_sweep () =
  let table =
    t
      ~title:
        "Compile cache (one store per series: the cold run misses every         lookup, the warm run hits every lookup, and the one-edit run         recompiles exactly the edited function's invalidation closure)"
      ~columns:
        [
          "series";
          "pool";
          "funcs";
          "cold (min)";
          "warm (min)";
          "warm speedup";
          "edit (min)";
          "edited";
          "closure";
          "edit misses";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.cache_point) ->
        Stats.Table.add_row table
          [
            p.Experiment.cp_series;
            string_of_int p.Experiment.cp_pool;
            string_of_int p.Experiment.cp_functions;
            Printf.sprintf "%.2f" (minutes p.Experiment.cp_cold_elapsed);
            Printf.sprintf "%.2f" (minutes p.Experiment.cp_warm_elapsed);
            Printf.sprintf "%.2f" p.Experiment.cp_warm_speedup;
            Printf.sprintf "%.2f" (minutes p.Experiment.cp_edit_elapsed);
            p.Experiment.cp_edited;
            string_of_int p.Experiment.cp_closure;
            string_of_int p.Experiment.cp_edit_misses;
          ])
      table (cache_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_cache_json () =
  let points = cache_points () in
  write_json ~schema:"warpcc-bench-cache/1" ~default:"BENCH_cache.json"
    ~summary:(Printf.sprintf "%d points" (List.length points))
    (fun b ->
      json_array b ~key:"points" points
        (fun (p : Experiment.cache_point) ->
          bpr b
            "{\"series\": \"%s\", \"pool\": %d, \"functions\": %d, \
             \"edited\": \"%s\", \"closure\": %d, \"cold_elapsed\": %.3f, \
             \"warm_elapsed\": %.3f, \"edit_elapsed\": %.3f, \
             \"warm_speedup\": %.4f, \"cold_hits\": %d, \"cold_misses\": \
             %d, \"warm_hits\": %d, \"warm_misses\": %d, \"edit_hits\": %d, \
             \"edit_misses\": %d, \"edit_invalidated\": %d}"
            (json_escape p.Experiment.cp_series)
            p.Experiment.cp_pool p.Experiment.cp_functions
            (json_escape p.Experiment.cp_edited)
            p.Experiment.cp_closure p.Experiment.cp_cold_elapsed
            p.Experiment.cp_warm_elapsed p.Experiment.cp_edit_elapsed
            p.Experiment.cp_warm_speedup p.Experiment.cp_cold_hits
            p.Experiment.cp_cold_misses p.Experiment.cp_warm_hits
            p.Experiment.cp_warm_misses p.Experiment.cp_edit_hits
            p.Experiment.cp_edit_misses p.Experiment.cp_edit_invalidated))

(* --- modular cross-module analysis: summary composition + project
   scheduling --- *)

let link_compose_points_cache = ref None

let link_compose_points () =
  match !link_compose_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.link_compose_sweep () in
    link_compose_points_cache := Some points;
    points

let link_sched_points_cache = ref None

let link_sched_points () =
  match !link_sched_points_cache with
  | Some points -> points
  | None ->
    let points = Experiment.link_sched_sweep () in
    link_sched_points_cache := Some points;
    points

let print_link_sweep () =
  let table =
    t
      ~title:
        "Link-time composition from interface summaries (no source         crosses the module boundary after summarization)"
      ~columns:
        [
          "shape @ modules";
          "functions";
          "edges";
          "cross";
          "levels";
          "licensed";
          "lints";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.link_compose_point) ->
        Stats.Table.add_float_row table
          ~label:
            (Printf.sprintf "%-9s @ %d" p.Experiment.lc_shape
               p.Experiment.lc_modules)
          [
            float_of_int p.Experiment.lc_functions;
            float_of_int p.Experiment.lc_edges;
            float_of_int p.Experiment.lc_cross_edges;
            float_of_int p.Experiment.lc_levels;
            p.Experiment.lc_licensed;
            float_of_int
              (List.fold_left (fun n (_, k) -> n + k) 0 p.Experiment.lc_diags);
          ])
      table (link_compose_points ())
  in
  Stats.Table.print table;
  print_newline ();
  let table =
    t
      ~title:
        "Project scheduling on the composed DAG (speedup = FCFS elapsed         / policy elapsed on the same project)"
      ~columns:
        [
          "shape @ modules, policy";
          "funcs";
          "pool";
          "units";
          "elapsed (min)";
          "speedup";
          "races";
        ]
  in
  let table =
    List.fold_left
      (fun table (p : Experiment.link_sched_point) ->
        Stats.Table.add_float_row table
          ~label:
            (Printf.sprintf "%-9s @ %2d, %s" p.Experiment.lp_shape
               p.Experiment.lp_modules
               (Sched.policy_name p.Experiment.lp_policy))
          [
            float_of_int p.Experiment.lp_functions;
            float_of_int p.Experiment.lp_pool;
            float_of_int p.Experiment.lp_units;
            minutes p.Experiment.lp_elapsed;
            p.Experiment.lp_speedup_vs_fcfs;
            float_of_int p.Experiment.lp_race_violations;
          ])
      table (link_sched_points ())
  in
  Stats.Table.print table;
  print_newline ()

let write_link_json () =
  let compose = link_compose_points () in
  let sched = link_sched_points () in
  write_json ~schema:"warpcc-bench-link/1" ~default:"BENCH_link.json"
    ~summary:
      (Printf.sprintf "%d compose points, %d sched points"
         (List.length compose) (List.length sched))
    (fun b ->
      json_array b ~key:"compose" compose
        (fun (p : Experiment.link_compose_point) ->
          bpr b
            "{\"shape\": \"%s\", \"modules\": %d, \"functions\": %d, \
             \"edges\": %d, \"cross_edges\": %d, \"levels\": %d, \
             \"module_levels\": %d, \"licensed\": %.4f, \"missing\": %d, \
             \"diags\": {%s}}"
            (json_escape p.Experiment.lc_shape)
            p.Experiment.lc_modules p.Experiment.lc_functions
            p.Experiment.lc_edges p.Experiment.lc_cross_edges
            p.Experiment.lc_levels p.Experiment.lc_module_levels
            p.Experiment.lc_licensed p.Experiment.lc_missing
            (String.concat ", "
               (List.map
                  (fun (c, n) ->
                    Printf.sprintf "\"%s\": %d" (json_escape c) n)
                  p.Experiment.lc_diags)));
      json_array b ~key:"sched" sched
        (fun (p : Experiment.link_sched_point) ->
          bpr b
            "{\"shape\": \"%s\", \"modules\": %d, \"functions\": %d, \
             \"policy\": \"%s\", \"pool\": %d, \"units\": %d, \"elapsed\": \
             %.3f, \"speedup_vs_fcfs\": %.4f, \"cross_edges\": %d, \
             \"spec_edges\": %d, \"race_violations\": %d}"
            (json_escape p.Experiment.lp_shape)
            p.Experiment.lp_modules p.Experiment.lp_functions
            (json_escape (Sched.policy_name p.Experiment.lp_policy))
            p.Experiment.lp_pool p.Experiment.lp_units p.Experiment.lp_elapsed
            p.Experiment.lp_speedup_vs_fcfs p.Experiment.lp_cross_edges
            p.Experiment.lp_spec_edges p.Experiment.lp_race_violations))

let write_bench_json () =
  let speedup_rows =
    List.concat_map
      (fun size ->
        List.map (fun p -> (size, p)) (points_for size))
      W2.Gen.all_sizes
  in
  write_json ~schema:"warpcc-bench-parallel/1" ~default:"BENCH_parallel.json"
    ~summary:
      (Printf.sprintf "%d speedup points, %d fault points"
         (List.length speedup_rows)
         (List.length (fault_points ())))
    (fun b ->
      json_array b ~key:"speedup" speedup_rows
        (fun (size, (p : Experiment.point)) ->
          let c = p.Experiment.comparison in
          bpr b
            "{\"size\": \"%s\", \"functions\": %d, \"elapsed_seq\": %.3f, \
             \"elapsed_par\": %.3f, \"speedup\": %.4f, \"retries\": %d, \
             \"fallback_tasks\": %d}"
            (json_escape (W2.Gen.size_name size))
            p.Experiment.n_functions c.Timings.seq.Timings.elapsed
            c.Timings.par.Timings.elapsed c.Timings.speedup
            c.Timings.par.Timings.retries c.Timings.par.Timings.fallback_tasks);
      json_array b ~key:"fault_sweep" (fault_points ())
        (fun (p : Experiment.fault_point) ->
          bpr b
            "{\"stations\": %d, \"rate\": %.2f, \"elapsed\": %.3f, \
             \"inflation\": %.4f, \"retries\": %d, \"fallback_tasks\": %d, \
             \"stations_lost\": %d, \"wasted_cpu\": %.3f}"
            p.Experiment.fp_stations p.Experiment.fp_rate
            p.Experiment.fp_elapsed p.Experiment.fp_inflation
            p.Experiment.fp_retries p.Experiment.fp_fallbacks
            p.Experiment.fp_lost p.Experiment.fp_wasted_cpu))

(* --- code quality: what the optimizer levels buy on the machine --- *)

let print_codegen_ablation () =
  let table =
    t
      ~title:
        "Generated-code quality by optimization level (f_small kernel on the cycle simulator)"
      ~columns:[ "level"; "wide instrs"; "cycles"; "cycles vs -O0" ]
  in
  let measure level =
    let m =
      W2.Gen.module_of_function (W2.Gen.sized_function ~name:"k" W2.Gen.Small)
    in
    let sec = List.hd (Midend.Lower.lower_module m) in
    List.iter (fun f -> ignore (Midend.Opt.optimize ~level f)) sec.Midend.Ir.funcs;
    let compiled =
      List.map
        (fun f -> (Warp.Codegen.compile_function f).Warp.Codegen.mfunc)
        sec.Midend.Ir.funcs
    in
    let image = Warp.Link.link ~section:"s" ~cells:1 compiled in
    let _, cycles =
      Warp.Cellsim.run ~fuel:50_000_000 image ~name:"k"
        ~args:[ Midend.Ir_interp.Vi 5; Midend.Ir_interp.Vi 1 ]
    in
    (Warp.Mcode.image_wide_count image, cycles)
  in
  let _, base_cycles = measure 0 in
  let table =
    List.fold_left
      (fun table level ->
        let wides, cycles = measure level in
        Stats.Table.add_float_row table
          ~label:(Printf.sprintf "-O%d" level)
          [
            float_of_int wides;
            float_of_int cycles;
            float_of_int cycles /. float_of_int base_cycles;
          ])
      table [ 0; 1; 2; 3 ]
  in
  Stats.Table.print table;
  print_newline ()

(* --- headline summary --- *)

let print_summary () =
  let speedup_at size n = (point_at size n).Experiment.comparison.Timings.speedup in
  let user = Experiment.user_program () in
  let user9 =
    (List.find (fun (p : Experiment.point) -> p.Experiment.n_functions = 9) user)
      .Experiment.comparison.Timings.speedup
  in
  Printf.printf
    "Headline (abstract): 'a speedup ranging from 3 to 6 using not more than 9 \
     processors'\n";
  Printf.printf "  f_medium, 8 functions : %.2f\n" (speedup_at W2.Gen.Medium 8);
  Printf.printf "  f_large,  8 functions : %.2f\n" (speedup_at W2.Gen.Large 8);
  Printf.printf "  f_huge,   8 functions : %.2f\n" (speedup_at W2.Gen.Huge 8);
  Printf.printf "  user program, 9 procs : %.2f\n" user9;
  Printf.printf "  f_tiny is of no use   : %.2f (4 functions)\n\n"
    (speedup_at W2.Gen.Tiny 4)

(* --- Bechamel micro-benchmarks of the real compiler --- *)

let bechamel_tests () =
  let open Bechamel in
  let source size =
    W2.Pretty.module_to_string
      (W2.Gen.module_of_function (W2.Gen.sized_function ~name:"bench" size))
  in
  let medium_src = source W2.Gen.Medium in
  let small_src = source W2.Gen.Small in
  let parsed = W2.Parser.module_of_string medium_src in
  let lowered () = List.hd (Midend.Lower.lower_module parsed) in
  [
    (* one Test.make per table/figure driver *)
    Test.make ~name:"fig3-5+12-13 size-series cell (tiny,n=2)"
      (Staged.stage (fun () ->
           ignore
             (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:2 ()))));
    Test.make ~name:"fig6-7 speedup cell (medium,n=2)"
      (Staged.stage (fun () ->
           ignore
             (Experiment.measure
                (Experiment.s_program_work ~size:W2.Gen.Medium ~count:2 ()))));
    Test.make ~name:"fig8-10+14-16 overhead cell (small,n=4)"
      (Staged.stage (fun () ->
           ignore
             (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Small ~count:4 ()))));
    Test.make ~name:"fig11 user program (5 procs)"
      (Staged.stage (fun () ->
           ignore (Experiment.measure ~processors:5 (Experiment.user_program_work ()))));
    (* real compiler phases *)
    Test.make ~name:"phase1 lex+parse+check (medium)"
      (Staged.stage (fun () ->
           let m = W2.Parser.module_of_string medium_src in
           ignore (W2.Semcheck.check_module m)));
    Test.make ~name:"phase2 lower+optimize (medium)"
      (Staged.stage (fun () ->
           let sec = lowered () in
           List.iter (fun f -> ignore (Midend.Opt.optimize f)) sec.Midend.Ir.funcs));
    Test.make ~name:"phase2+3+4 full compile (small)"
      (Staged.stage (fun () ->
           let mw = Driver.Compile.compile_source small_src in
           ignore (Driver.Compile.total_image_bytes mw)));
    Test.make ~name:"netsim seq+par runs (small,n=4)"
      (Staged.stage (fun () ->
           let mw = Experiment.s_program_work ~size:W2.Gen.Small ~count:4 () in
           let plan = Plan.one_per_station mw in
           ignore (Seqrun.run { Config.default with Config.stations = 1 } mw);
           ignore (Parrun.run { Config.default with Config.stations = 5 } mw plan)));
  ]

let print_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "Bechamel micro-benchmarks (monotonic clock per run):";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          Printf.printf "  %-44s %12.3f ms/run\n%!" name (estimate /. 1e6))
        analyzed)
    (bechamel_tests ());
  print_newline ()

(* --- traced demo run: Chrome trace, Gantt timeline, metrics --- *)

let print_trace_demo () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Small ~count:8 () in
  let plan = Plan.one_per_station mw in
  let n_fm = Plan.task_count plan in
  let tr = Trace.create () in
  let cfg =
    {
      Config.default with
      Config.stations = n_fm + 1;
      noise_seed = 1 + (17 * n_fm);
      trace = tr;
    }
  in
  let seq = Seqrun.run { cfg with Config.stations = 1; trace = Trace.none } mw in
  let par = (Parrun.run cfg mw plan).Parrun.run in
  let path = "warpcc_trace.json" in
  let oc = open_out path in
  output_string oc (Trace.to_chrome_json tr);
  close_out oc;
  Printf.printf "wrote %s (%d spans, %d instants, %d tracks)\n\n" path
    (Trace.span_count tr) (Trace.instant_count tr)
    (List.length (Trace.used_tracks tr));
  Stats.Table.print (Trace.gantt tr);
  print_newline ();
  Stats.Table.print (Metrics.to_table (Metrics.of_trace tr));
  print_newline ();
  Stats.Table.print
    (Traceview.decomposition_table
       (Traceview.decompose ~processors:n_fm ~seq_elapsed:seq.Timings.elapsed tr));
  Printf.printf "parallel elapsed %.1f s, speedup %.2f\n\n" par.Timings.elapsed
    (seq.Timings.elapsed /. par.Timings.elapsed)

(* --- main --- *)

let all_figures () =
  print_time_series ~fig:"3" W2.Gen.Tiny;
  print_time_series ~fig:"4" W2.Gen.Large;
  print_time_series ~fig:"5" W2.Gen.Huge;
  print_fig6 ();
  print_fig7 ();
  print_overheads ~fig:"8" ~relative:true [ W2.Gen.Tiny; W2.Gen.Small ];
  print_overheads ~fig:"9" ~relative:true [ W2.Gen.Medium; W2.Gen.Large ];
  print_overheads ~fig:"10" ~relative:true [ W2.Gen.Huge ];
  print_fig11 ();
  print_time_series ~fig:"12" W2.Gen.Small;
  print_time_series ~fig:"13" W2.Gen.Medium;
  print_overheads ~fig:"14" ~relative:false [ W2.Gen.Tiny; W2.Gen.Small ];
  print_overheads ~fig:"15" ~relative:false [ W2.Gen.Medium; W2.Gen.Large ];
  print_overheads ~fig:"16" ~relative:false [ W2.Gen.Huge ];
  print_saturation ();
  print_summary ()

(* The bench-registration table: one row per target — name, the
   one-line doc `--help` prints, whether `all` (the default) includes
   it, and the runner.  Adding a sweep means adding one row here;
   dispatch, the help listing and the `all` sequence all derive from
   the table, so they cannot drift apart. *)
let targets : (string * string * bool * (unit -> unit)) list =
  let fig n doc run = (Printf.sprintf "fig%d" n, doc, false, run) in
  [
    ( "figures",
      "figures 3-16, the saturation sweep and the headline summary",
      true,
      all_figures );
    fig 3 "execution times, f_tiny" (fun () ->
        print_time_series ~fig:"3" W2.Gen.Tiny);
    fig 4 "execution times, f_large" (fun () ->
        print_time_series ~fig:"4" W2.Gen.Large);
    fig 5 "execution times, f_huge" (fun () ->
        print_time_series ~fig:"5" W2.Gen.Huge);
    fig 6 "speedup over the sequential compiler" print_fig6;
    fig 7 "speedup versus function size" print_fig7;
    fig 8 "relative overheads, f_tiny + f_small" (fun () ->
        print_overheads ~fig:"8" ~relative:true [ W2.Gen.Tiny; W2.Gen.Small ]);
    fig 9 "relative overheads, f_medium + f_large" (fun () ->
        print_overheads ~fig:"9" ~relative:true [ W2.Gen.Medium; W2.Gen.Large ]);
    fig 10 "relative overheads, f_huge" (fun () ->
        print_overheads ~fig:"10" ~relative:true [ W2.Gen.Huge ]);
    fig 11 "speedup for the user program" print_fig11;
    fig 12 "execution times, f_small" (fun () ->
        print_time_series ~fig:"12" W2.Gen.Small);
    fig 13 "execution times, f_medium" (fun () ->
        print_time_series ~fig:"13" W2.Gen.Medium);
    fig 14 "absolute overheads, f_tiny + f_small" (fun () ->
        print_overheads ~fig:"14" ~relative:false [ W2.Gen.Tiny; W2.Gen.Small ]);
    fig 15 "absolute overheads, f_medium + f_large" (fun () ->
        print_overheads ~fig:"15" ~relative:false
          [ W2.Gen.Medium; W2.Gen.Large ]);
    fig 16 "absolute overheads, f_huge" (fun () ->
        print_overheads ~fig:"16" ~relative:false [ W2.Gen.Huge ]);
    ("saturation", "section 4.2.2 processor-saturation sweep", false,
     print_saturation);
    ("summary", "the abstract's headline numbers", false, print_summary);
    ("scaling", "section-6 scaling limit, capped and uncapped pools", true,
     print_scaling);
    ("codegen", "generated-code quality by optimization level", true,
     print_codegen_ablation);
    ("makestudy", "section-3.4 parallel-make coexistence study", true,
     print_make_study);
    ("grain", "finer-grain (phase-pipelined) study", true, print_grain_study);
    ("inlining", "section-5.1 inlining as grain coarsening", true,
     print_inlining_study);
    ("ablations", "DESIGN.md section-5 ablations", true, print_ablations);
    ("faults", "seeded fault/recovery sweep (docs/FAULTS.md)", true,
     print_fault_sweep);
    ( "sched",
      "scheduling-policy sweep + BENCH_sched.json",
      true,
      fun () ->
        print_sched_sweep ();
        write_sched_json () );
    ( "deps",
      "dependence-aware dispatch sweep + BENCH_deps.json",
      true,
      fun () ->
        print_dag_sweep ();
        write_deps_json () );
    ( "absint",
      "abstract-interpretation pruning sweep + BENCH_absint.json",
      true,
      fun () ->
        print_absint_sweep ();
        write_absint_json () );
    ( "spec",
      "speculative-dispatch sweep + BENCH_spec.json",
      true,
      fun () ->
        print_spec_sweep ();
        write_spec_json () );
    ( "profile",
      "critical-path attribution sweep + BENCH_profile.json",
      true,
      fun () ->
        print_profile_sweep ();
        write_profile_json () );
    ( "cache",
      "compile-cache cold/warm/one-edit sweep + BENCH_cache.json",
      true,
      fun () ->
        print_cache_sweep ();
        write_cache_json () );
    ( "link",
      "cross-module composition + project scheduling + BENCH_link.json",
      true,
      fun () ->
        print_link_sweep ();
        write_link_json () );
    ("json", "machine-readable BENCH_parallel.json", true, write_bench_json);
    ("trace", "traced parallel run: warpcc_trace.json + Gantt", false,
     print_trace_demo);
    ("bechamel", "Bechamel micro-benchmarks of the real compiler", true,
     print_bechamel);
  ]

let print_help () =
  print_endline "usage: main.exe [TARGET...] [--out PATH]";
  print_newline ();
  print_endline "targets (* = part of `all`, the no-argument default):";
  List.iter
    (fun (name, doc, in_all, _) ->
      Printf.printf "  %c %-10s %s\n" (if in_all then '*' else ' ') name doc)
    targets;
  print_endline "  * all        every target marked *, in table order";
  print_newline ();
  print_endline
    "--out PATH redirects the JSON writer of a single-target invocation;";
  print_endline
    "without it every writer keeps its default BENCH_*.json filename,";
  print_endline "which the CI regression gates depend on."

let () =
  (* Split off [--out PATH] (redirects the JSON writers), leaving the
     target names. *)
  let rec split_args acc = function
    | [] -> List.rev acc
    | "--out" :: path :: rest ->
      out_override := Some path;
      split_args acc rest
    | [ "--out" ] ->
      prerr_endline "--out requires a path";
      exit 2
    | a :: rest -> split_args (a :: acc) rest
  in
  let args = split_args [] (List.tl (Array.to_list Sys.argv)) in
  let run name =
    match List.find_opt (fun (n, _, _, _) -> n = name) targets with
    | Some (_, _, _, f) -> f ()
    | None -> (
      match name with
      | "all" ->
        List.iter (fun (_, _, in_all, f) -> if in_all then f ()) targets
      | "--help" | "-h" | "help" -> print_help ()
      | other ->
        Printf.eprintf "unknown target %S (try --help)\n" other;
        exit 2)
  in
  match args with [] -> run "all" | args -> List.iter run args
