(* Tests for the W2 frontend: lexer, parser, pretty-printer round trips,
   semantic checker, reference interpreter and program generator. *)

open W2

let sample_module =
  {|
module demo
  section s1 cells 2
  function inc(x: int) : int
  begin
    return x + 1;
  end
  function acc(n: int) : float
    var i : int;
    var total : float;
    var buf : array[4] of float;
  begin
    total := 0.0;
    buf[0] := 1.5;
    for i := 0 to n do
      total := total + float(inc(i)) + buf[0];
    end;
    return total;
  end
  end
end
|}

let parse_ok src = Parser.module_of_string src

(* --- lexer --- *)

let test_lex_simple () =
  let toks = List.map fst (Lexer.tokenize "x := 1 + 2.5; -- comment\n y") in
  Alcotest.(check int) "token count" 8 (List.length toks);
  (match toks with
  | [ IDENT "x"; ASSIGN; INT 1; PLUS; FLOAT f; SEMI; IDENT "y"; EOF ] ->
    Alcotest.(check (float 0.0)) "float lit" 2.5 f
  | _ -> Alcotest.fail "unexpected token stream")

let test_lex_operators () =
  let toks = List.map fst (Lexer.tokenize "<= >= <> < > = : :=") in
  Alcotest.(check bool) "ops" true
    (toks = Token.[ LE; GE; NE; LT; GT; EQ; COLON; ASSIGN; EOF ])

let test_lex_keywords () =
  let toks = List.map fst (Lexer.tokenize "module MODULE Module") in
  Alcotest.(check bool) "case-insensitive keywords" true
    (toks = Token.[ MODULE; MODULE; MODULE; EOF ])

let test_lex_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ (_, la); (_, lb); _ ] ->
    Alcotest.(check int) "line a" 1 la.Loc.line;
    Alcotest.(check int) "line b" 2 lb.Loc.line;
    Alcotest.(check int) "col b" 3 lb.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lex_error () =
  match Lexer.tokenize "a ? b" with
  | exception Lexer.Error (_, loc) -> Alcotest.(check int) "col" 3 loc.Loc.col
  | _ -> Alcotest.fail "expected a lexer error"

let test_lex_exponent () =
  match List.map fst (Lexer.tokenize "1e3 2.5E-2") with
  | [ FLOAT a; FLOAT b; EOF ] ->
    Alcotest.(check (float 1e-12)) "1e3" 1000.0 a;
    Alcotest.(check (float 1e-12)) "2.5e-2" 0.025 b
  | _ -> Alcotest.fail "expected two float literals"

(* --- parser --- *)

let test_parse_module () =
  let m = parse_ok sample_module in
  Alcotest.(check string) "name" "demo" m.Ast.mname;
  Alcotest.(check int) "sections" 1 (List.length m.Ast.sections);
  Alcotest.(check int) "functions" 2 Ast.(func_count m)

let test_parse_precedence () =
  let e = Parser.expr_of_string "1 + 2 * 3" in
  match e.Ast.e with
  | Ast.Binary (Ast.Add, _, { e = Ast.Binary (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "expected + at root with * below"

let test_parse_assoc () =
  let e = Parser.expr_of_string "1 - 2 - 3" in
  match e.Ast.e with
  | Ast.Binary (Ast.Sub, { e = Ast.Binary (Ast.Sub, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "subtraction must associate left"

let test_parse_bool_prec () =
  let e = Parser.expr_of_string "true or false and false" in
  match e.Ast.e with
  | Ast.Binary (Ast.Or, _, { e = Ast.Binary (Ast.And, _, _); _ }) -> ()
  | _ -> Alcotest.fail "'and' must bind tighter than 'or'"

let test_parse_unary () =
  let e = Parser.expr_of_string "-x * y" in
  match e.Ast.e with
  | Ast.Binary (Ast.Mul, { e = Ast.Unary (Ast.Neg, _); _ }, _) -> ()
  | _ -> Alcotest.fail "unary minus must bind tighter than *"

let test_parse_error_reports_location () =
  match Parser.module_of_string "module m section s cells 1 end end" with
  | exception Parser.Error (msg, _) ->
    Alcotest.(check bool) "mentions function" true (Tutil.contains msg "function")
  | _ -> Alcotest.fail "expected parse error for empty section"

let test_parse_dangling_else () =
  let src =
    {|
function f(x: int) : int
begin
  if x > 0 then
    if x > 1 then
      return 2;
    else
      return 1;
    end;
  end;
  return 0;
end
|}
  in
  let f = Parser.function_of_string src in
  match (List.hd f.Ast.body).Ast.s with
  | Ast.If (_, [ { s = Ast.If (_, _, [ _ ]); _ } ], []) -> ()
  | _ -> Alcotest.fail "else must attach to the inner if"

let test_parse_channels () =
  let src =
    {|
function f()
  var x : float;
begin
  receive(X, x);
  send(Y, x * 2.0);
end
|}
  in
  let f = Parser.function_of_string src in
  match List.map (fun (s : Ast.stmt) -> s.Ast.s) f.Ast.body with
  | [ Ast.Receive (Ast.Chan_x, _); Ast.Send (Ast.Chan_y, _) ] -> ()
  | _ -> Alcotest.fail "channel statements parsed wrongly"

(* --- pretty-printer round trip --- *)

let strip_locs_module m = Pretty.module_to_string m

let test_roundtrip_sample () =
  let m = parse_ok sample_module in
  let printed = Pretty.module_to_string m in
  let reparsed = parse_ok printed in
  Alcotest.(check string) "print . parse . print is stable" printed
    (strip_locs_module reparsed)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"pretty/parse round trip on random functions"
    ~count:150
    QCheck.(pair small_nat small_nat)
    (fun (seed, size) ->
      let f = Gen.random_function ~seed ~size () in
      let printed = Pretty.func_to_string f in
      let reparsed = Parser.function_of_string printed in
      Pretty.func_to_string reparsed = printed)

(* --- semantic checker --- *)

let check_src src = Semcheck.check_module (parse_ok src)

let expect_error src fragment =
  let errors = check_src src in
  let found =
    List.exists (fun e -> Tutil.contains (Semcheck.error_to_string e) fragment) errors
  in
  if not found then
    Alcotest.failf "expected an error mentioning %S, got: %s" fragment
      (String.concat "; " (List.map Semcheck.error_to_string errors))

let wrap_func body_decls =
  Printf.sprintf
    "module m section s cells 1 function f(x: int) : int %s end end" body_decls

let test_sem_ok () =
  Alcotest.(check int) "no errors" 0 (List.length (check_src sample_module))

let test_sem_undeclared () =
  expect_error (wrap_func "begin return y; end") "undeclared variable 'y'"

let test_sem_type_mismatch () =
  expect_error
    (wrap_func "var a : float; begin a := 1; return x; end")
    "right-hand side of assignment"

let test_sem_call_arity () =
  expect_error
    (wrap_func "begin return f(1, 2); end")
    "expects 1 argument(s) but got 2"

let test_sem_return_check () =
  expect_error
    (wrap_func "begin if x > 0 then return 1; end; end")
    "does not return a value on every path"

let test_sem_missing_function () =
  expect_error (wrap_func "begin return g(); end") "undefined function 'g'"

let test_sem_bad_index () =
  expect_error
    (wrap_func "var a : array[4] of int; begin return a[7]; end")
    "out of bounds"

let test_sem_duplicate_var () =
  expect_error
    (wrap_func "var x : int; begin return x; end")
    "duplicate declaration"

let test_sem_for_var_type () =
  expect_error
    (wrap_func
       "var q : float; begin for q := 0 to 3 do x := x + 1; end; return x; end")
    "must be int"

let test_sem_cross_function_type () =
  (* Return-type/use mismatch across functions of the same section: the
     check that forces phase 1 to see the whole section program. *)
  expect_error
    {|
module m
  section s cells 1
  function g() : float
  begin
    return 1.0;
  end
  function f() : int
  begin
    return g();
  end
  end
end
|}
    "returned value"

let test_sem_void_in_expr () =
  expect_error
    {|
module m
  section s cells 1
  function g()
  begin
    return;
  end
  function f() : int
  begin
    return g();
  end
  end
end
|}
    "returns no value"

let prop_random_functions_check =
  QCheck.Test.make ~name:"generated random functions always type-check"
    ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (seed, size) ->
      let f = Gen.random_function ~seed ~size () in
      let m = Gen.module_of_function f in
      Semcheck.check_module m = [])

(* --- interpreter --- *)

let run_src src ~name ~args =
  let m = parse_ok src in
  Semcheck.check_module_exn m;
  Interp.run_function (List.hd m.Ast.sections) ~name ~args

let test_interp_basic () =
  let result = run_src sample_module ~name:"acc" ~args:[ Interp.Vint 3 ] in
  (* total = sum_{i=0..3} (i+1) + 1.5 = 10 + 6 = 16 *)
  Alcotest.check Tutil.value_testable "acc(3)" (Interp.Vfloat 16.0)
    (Option.get result)

let test_interp_call_chain () =
  let result = run_src sample_module ~name:"inc" ~args:[ Interp.Vint 41 ] in
  Alcotest.check Tutil.value_testable "inc(41)" (Interp.Vint 42) (Option.get result)

let test_interp_channels () =
  let src =
    {|
module m
  section s cells 1
  function relay(n: int) : int
    var i : int;
    var x : float;
  begin
    for i := 1 to n do
      receive(X, x);
      send(Y, x * 2.0);
    end;
    return n;
  end
  end
end
|}
  in
  let m = parse_ok src in
  Semcheck.check_module_exn m;
  let channels, outputs =
    Interp.queue_channels
      ~input_x:[ Interp.Vfloat 1.0; Interp.Vfloat 2.5 ]
      ~input_y:[]
  in
  let result =
    Interp.run_function ~channels (List.hd m.Ast.sections) ~name:"relay"
      ~args:[ Interp.Vint 2 ]
  in
  Alcotest.check Tutil.value_testable "returns n" (Interp.Vint 2) (Option.get result);
  let _, out_y = outputs () in
  Alcotest.(check int) "two outputs" 2 (List.length out_y);
  Alcotest.check Tutil.value_testable "doubled" (Interp.Vfloat 5.0)
    (List.nth out_y 1)

let test_interp_division_by_zero () =
  match run_src (wrap_func "begin return x / 0; end") ~name:"f" ~args:[ Interp.Vint 1 ] with
  | exception Interp.Runtime_error (msg, _) ->
    Alcotest.(check bool) "message" true (Tutil.contains msg "division by zero")
  | _ -> Alcotest.fail "expected division-by-zero error"

let test_interp_fuel () =
  let src =
    wrap_func
      "var i : int; begin i := 0; while i < 100000 do i := i + 1; end; return i; end"
  in
  let m = parse_ok src in
  match
    Interp.run_function ~fuel:100 (List.hd m.Ast.sections) ~name:"f"
      ~args:[ Interp.Vint 0 ]
  with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_while () =
  let src =
    wrap_func
      "var i : int; var s : int; begin s := 0; i := x; while i > 0 do s := s + i; i := i - 1; end; return s; end"
  in
  let result = run_src src ~name:"f" ~args:[ Interp.Vint 4 ] in
  Alcotest.check Tutil.value_testable "sum 4..1" (Interp.Vint 10) (Option.get result)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic on random programs"
    ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, size, input) ->
      let f = Gen.random_function ~seed ~size () in
      let m = Gen.module_of_function f in
      let sec = List.hd m.Ast.sections in
      let args = [ Interp.Vint (input mod 20); Interp.Vfloat 1.5 ] in
      let run () =
        try Some (Interp.run_function ~fuel:200_000 sec ~name:"prop_f" ~args)
        with Interp.Out_of_fuel | Interp.Runtime_error _ -> None
      in
      run () = run ())

(* --- generator --- *)

let test_gen_sizes () =
  List.iter
    (fun size ->
      let f = Gen.sized_function ~name:(Gen.size_name size) size in
      let loc = Pretty.func_loc f in
      Alcotest.(check int)
        (Printf.sprintf "LoC of %s" (Gen.size_name size))
        (Gen.size_lines size) loc)
    Gen.all_sizes

let test_gen_checks () =
  List.iter
    (fun size ->
      let f = Gen.sized_function ~name:(Gen.size_name size) size in
      let m = Gen.module_of_function f in
      match Semcheck.check_module m with
      | [] -> ()
      | errors ->
        Alcotest.failf "%s does not check: %s" (Gen.size_name size)
          (Semcheck.error_to_string (List.hd errors)))
    Gen.all_sizes

let test_gen_runs () =
  List.iter
    (fun size ->
      let f = Gen.sized_function ~name:(Gen.size_name size) size in
      let m = Gen.module_of_function f in
      let result =
        Interp.run_function ~fuel:5_000_000 (List.hd m.Ast.sections)
          ~name:f.Ast.fname
          ~args:[ Interp.Vint 7; Interp.Vint 3 ]
      in
      match result with
      | Some (Interp.Vfloat v) ->
        if Float.is_nan v || Float.is_nan (v *. 0.0) then
          Alcotest.failf "%s returned a non-finite float" (Gen.size_name size)
      | _ -> Alcotest.failf "%s did not return a float" (Gen.size_name size))
    Gen.all_sizes

let test_gen_deterministic () =
  let a = Gen.sized_function ~name:"f" Gen.Large in
  let b = Gen.sized_function ~name:"f" Gen.Large in
  Alcotest.(check string) "same source" (Pretty.func_to_string a)
    (Pretty.func_to_string b)

let test_gen_nesting_grows () =
  let small = Gen.sized_function ~name:"a" Gen.Small in
  let huge = Gen.sized_function ~name:"b" Gen.Huge in
  Alcotest.(check bool) "deeper nests for bigger functions" true
    (Ast.max_loop_nesting huge.Ast.body > Ast.max_loop_nesting small.Ast.body)

let test_gen_s_program () =
  let m = Gen.s_program ~size:Gen.Small ~count:4 () in
  Alcotest.(check int) "4 functions" 4 (Ast.func_count m);
  Alcotest.(check int) "1 section" 1 (List.length m.Ast.sections);
  Alcotest.(check int) "no check errors" 0
    (List.length (Semcheck.check_module m))

let test_gen_user_program () =
  let m = Gen.user_program () in
  Alcotest.(check int) "9 functions" 9 (Ast.func_count m);
  Alcotest.(check int) "3 sections" 3 (List.length m.Ast.sections);
  Alcotest.(check int) "no check errors" 0
    (List.length (Semcheck.check_module m));
  (* Each section holds one ~300-line function and two small ones. *)
  List.iter
    (fun (sec : Ast.section) ->
      let locs =
        List.map Pretty.func_loc sec.Ast.funcs |> List.sort compare |> List.rev
      in
      match locs with
      | big :: smalls ->
        Alcotest.(check int) "big is 300" 300 big;
        List.iter
          (fun l ->
            Alcotest.(check bool) "small in 5..45" true (l >= 4 && l <= 45))
          smalls
      | [] -> Alcotest.fail "empty section")
    m.Ast.sections

let test_function_of_lines_sweep () =
  List.iter
    (fun lines ->
      let f = Gen.function_of_lines ~name:"g" lines in
      let actual = Pretty.func_loc f in
      Alcotest.(check bool)
        (Printf.sprintf "%d lines requested, %d produced" lines actual)
        true
        (abs (actual - lines) <= 6))
    [ 5; 10; 20; 30; 50; 100; 200; 300; 400 ]

(* --- lint --- *)

let lint_codes src =
  List.map (fun d -> d.Diag.d_code) (Lint.lint_module (Parser.module_of_string src))

let wrap body =
  Printf.sprintf
    {|
module m
  section s cells 1
%s
  end
end
|}
    body

let test_lint_clean () =
  let codes =
    lint_codes
      (wrap
         {|
  function main(n: int)
    var i : int;
  begin
    for i := 1 to n do
      send(X, helper(i));
    end;
  end
  function helper(n: int) : int
  begin
    return n + 1;
  end
|})
  in
  Alcotest.(check (list string)) "no findings" [] codes

let test_lint_diags_sorted_and_promotable () =
  let ds =
    Lint.lint_module
      (Parser.module_of_string
         (wrap
            {|
  function f(x: int) : int
    var unused : int;
  begin
    return 1;
  end
|}))
  in
  Alcotest.(check bool) "several findings" true (List.length ds >= 2);
  Alcotest.(check bool) "warnings only" false (Diag.has_errors ds);
  Alcotest.(check bool) "-Werror promotes" true
    (Diag.has_errors (Diag.promote_warnings ds));
  let sorted = Diag.sort ds in
  Alcotest.(check bool) "stable under re-sort" true (Diag.sort sorted = sorted);
  List.iter (fun d -> Alcotest.(check bool) "renders" true
                        (String.length (Diag.to_string d) > 0)) ds

let suites =
  [
    ( "w2.lexer",
      [
        Alcotest.test_case "simple" `Quick test_lex_simple;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "keywords" `Quick test_lex_keywords;
        Alcotest.test_case "positions" `Quick test_lex_positions;
        Alcotest.test_case "error" `Quick test_lex_error;
        Alcotest.test_case "exponents" `Quick test_lex_exponent;
      ] );
    ( "w2.parser",
      [
        Alcotest.test_case "module" `Quick test_parse_module;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "associativity" `Quick test_parse_assoc;
        Alcotest.test_case "bool precedence" `Quick test_parse_bool_prec;
        Alcotest.test_case "unary" `Quick test_parse_unary;
        Alcotest.test_case "error location" `Quick test_parse_error_reports_location;
        Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
        Alcotest.test_case "channels" `Quick test_parse_channels;
      ] );
    ( "w2.pretty",
      [
        Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
        QCheck_alcotest.to_alcotest prop_roundtrip_random;
      ] );
    ( "w2.semcheck",
      [
        Alcotest.test_case "accepts sample" `Quick test_sem_ok;
        Alcotest.test_case "undeclared" `Quick test_sem_undeclared;
        Alcotest.test_case "type mismatch" `Quick test_sem_type_mismatch;
        Alcotest.test_case "call arity" `Quick test_sem_call_arity;
        Alcotest.test_case "return paths" `Quick test_sem_return_check;
        Alcotest.test_case "missing function" `Quick test_sem_missing_function;
        Alcotest.test_case "bad index" `Quick test_sem_bad_index;
        Alcotest.test_case "duplicate var" `Quick test_sem_duplicate_var;
        Alcotest.test_case "for var type" `Quick test_sem_for_var_type;
        Alcotest.test_case "cross-function types" `Quick test_sem_cross_function_type;
        Alcotest.test_case "void in expression" `Quick test_sem_void_in_expr;
        QCheck_alcotest.to_alcotest prop_random_functions_check;
      ] );
    ( "w2.interp",
      [
        Alcotest.test_case "basic" `Quick test_interp_basic;
        Alcotest.test_case "call chain" `Quick test_interp_call_chain;
        Alcotest.test_case "channels" `Quick test_interp_channels;
        Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
        Alcotest.test_case "fuel" `Quick test_interp_fuel;
        Alcotest.test_case "while" `Quick test_interp_while;
        QCheck_alcotest.to_alcotest prop_interp_deterministic;
      ] );
    ( "w2.lint",
      [
        (* per-code witnesses live in the fixture table (test_lintfix) *)
        Alcotest.test_case "clean program" `Quick test_lint_clean;
        Alcotest.test_case "diag plumbing" `Quick
          test_lint_diags_sorted_and_promotable;
      ] );
    ( "w2.gen",
      [
        Alcotest.test_case "paper sizes exact" `Quick test_gen_sizes;
        Alcotest.test_case "benchmarks type-check" `Quick test_gen_checks;
        Alcotest.test_case "benchmarks run" `Quick test_gen_runs;
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "nesting grows with size" `Quick test_gen_nesting_grows;
        Alcotest.test_case "s_program" `Quick test_gen_s_program;
        Alcotest.test_case "user program" `Quick test_gen_user_program;
        Alcotest.test_case "line sweep" `Quick test_function_of_lines_sweep;
      ] );
  ]
