(* Tests for the discrete-event simulator and the host models. *)

open Netsim

let feq = Alcotest.float 1e-6

let test_delay_ordering () =
  let sim = Des.create () in
  let trace = ref [] in
  Des.spawn sim (fun () ->
      Des.delay 5.0;
      trace := ("b", Des.now sim) :: !trace);
  Des.spawn sim (fun () ->
      Des.delay 2.0;
      trace := ("a", Des.now sim) :: !trace);
  let finish = Des.run sim in
  Alcotest.check feq "final time" 5.0 finish;
  match List.rev !trace with
  | [ ("a", t1); ("b", t2) ] ->
    Alcotest.check feq "a at 2" 2.0 t1;
    Alcotest.check feq "b at 5" 5.0 t2
  | _ -> Alcotest.fail "wrong event order"

let test_equal_time_fifo () =
  let sim = Des.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Des.spawn sim (fun () -> order := i :: !order)
  done;
  ignore (Des.run sim);
  Alcotest.(check (list int)) "creation order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_negative_delay_rejected () =
  let sim = Des.create () in
  let failed = ref false in
  Des.spawn sim (fun () ->
      match Des.delay (-1.0) with
      | () -> ()
      | exception Invalid_argument _ -> failed := true);
  ignore (Des.run sim);
  Alcotest.(check bool) "rejected" true !failed

let test_mailbox () =
  let sim = Des.create () in
  let mb = Sync.mailbox () in
  let got = ref [] in
  Des.spawn sim (fun () ->
      (* Blocks until the sender runs. *)
      got := Sync.recv mb :: !got;
      got := Sync.recv mb :: !got);
  Des.spawn sim (fun () ->
      Des.delay 1.0;
      Sync.send mb 42;
      Des.delay 1.0;
      Sync.send mb 43);
  ignore (Des.run sim);
  Alcotest.(check (list int)) "messages in order" [ 42; 43 ] (List.rev !got)

let test_resource_serializes () =
  let sim = Des.create () in
  let r = Sync.resource 1 in
  let finished = ref [] in
  for i = 1 to 3 do
    Des.spawn sim (fun () ->
        Sync.use sim r 10.0;
        finished := (i, Des.now sim) :: !finished)
  done;
  ignore (Des.run sim);
  let times = List.rev_map snd !finished in
  Alcotest.(check (list (float 1e-6))) "sequential service" [ 30.0; 20.0; 10.0 ]
    (List.rev times)

let test_resource_capacity_two () =
  let sim = Des.create () in
  let r = Sync.resource 2 in
  let finish = ref 0.0 in
  for _ = 1 to 4 do
    Des.spawn sim (fun () ->
        Sync.use sim r 10.0;
        finish := max !finish (Des.now sim))
  done;
  ignore (Des.run sim);
  Alcotest.check feq "two waves" 20.0 !finish

let test_join () =
  let sim = Des.create () in
  let j = Sync.join 3 in
  let released_at = ref (-1.0) in
  Des.spawn sim (fun () ->
      Sync.wait j;
      released_at := Des.now sim);
  for i = 1 to 3 do
    Des.spawn sim (fun () ->
        Des.delay (float_of_int i);
        Sync.signal j)
  done;
  ignore (Des.run sim);
  Alcotest.check feq "released when last child signals" 3.0 !released_at

let test_join_zero () =
  let sim = Des.create () in
  let ok = ref false in
  Des.spawn sim (fun () ->
      Sync.wait (Sync.join 0);
      ok := true);
  ignore (Des.run sim);
  Alcotest.(check bool) "no wait on empty join" true !ok

let test_ethernet_uncontended () =
  let sim = Des.create () in
  let e = Net.ethernet ~bytes_per_sec:1e6 ~contention_alpha:0.5 () in
  let t = ref 0.0 in
  Des.spawn sim (fun () ->
      Net.transfer sim e ~bytes:1e6;
      t := Des.now sim);
  ignore (Des.run sim);
  Alcotest.check feq "one second" 1.0 !t

let test_ethernet_contention () =
  let run concurrent =
    let sim = Des.create () in
    let e = Net.ethernet ~bytes_per_sec:1e6 ~contention_alpha:0.5 () in
    let finish = ref 0.0 in
    for _ = 1 to concurrent do
      Des.spawn sim (fun () ->
          Net.transfer sim e ~bytes:1e6;
          finish := max !finish (Des.now sim))
    done;
    ignore (Des.run sim);
    !finish
  in
  let solo = run 1 and pair = run 2 in
  (* Two concurrent transfers each slow down (collisions) but still
     overlap: strictly worse than one alone, strictly better than
     running them back to back. *)
  Alcotest.(check bool)
    (Printf.sprintf "solo %.2fs < pair %.2fs < 2x solo" solo pair)
    true
    (pair > 1.2 *. solo && pair < 2.0 *. solo)

let test_fileserver_queues () =
  let sim = Des.create () in
  let fs = Net.fileserver ~seek_seconds:1.0 ~disk_bytes_per_sec:1e6 () in
  let finish = ref 0.0 in
  for _ = 1 to 2 do
    Des.spawn sim (fun () ->
        Net.disk_io sim fs ~bytes:1e6;
        finish := max !finish (Des.now sim))
  done;
  ignore (Des.run sim);
  Alcotest.check feq "disk serializes" 4.0 !finish

let test_workstation_compute_factor () =
  let sim = Des.create () in
  let ws = Host.workstation ~id:0 ~mem_mb:16.0 in
  Host.add_resident ws 32.0; (* pressure 2.0 *)
  let t = ref 0.0 in
  Des.spawn sim (fun () ->
      (match
         Host.compute sim ws
           ~factor:(fun w -> 1.0 +. Host.memory_pressure w)
           ~seconds:10.0
       with
      | Fault.Completed -> ()
      | Fault.Station_failed _ -> Alcotest.fail "fault-free station failed");
      t := Des.now sim);
  ignore (Des.run sim);
  Alcotest.check feq "slowed 3x" 30.0 !t;
  Alcotest.check feq "cpu accumulated" 30.0 ws.Host.busy_seconds

let test_cluster_claim_fcfs () =
  let sim = Des.create () in
  let cluster = Host.cluster ~stations:2 () in
  let order = ref [] in
  for i = 1 to 3 do
    Des.spawn sim (fun () ->
        let ws = Host.claim sim cluster in
        Des.delay 10.0;
        order := (i, ws.Host.ws_id, Des.now sim) :: !order;
        Host.release_station sim cluster ws)
  done;
  ignore (Des.run sim);
  match List.rev !order with
  | [ (1, _, t1); (2, _, t2); (3, _, t3) ] ->
    Alcotest.check feq "first two together" t1 t2;
    Alcotest.check feq "third waits" 20.0 t3
  | _ -> Alcotest.fail "unexpected claim order"

(* Invariants under churn: a claim/release storm with jittered hold
   times never duplicates a station (claimed + free <= total at every
   instant; a just-released station handed straight to a waiter is
   momentarily in transit), and conservation is exact once the storm
   drains: every station is back in the free queue. *)
let test_cluster_claim_storm () =
  let stations = 4 in
  let sim = Des.create () in
  let cluster = Host.cluster ~stations () in
  let claimed = ref 0 in
  let violations = ref 0 in
  let check_no_duplication () =
    if !claimed + Queue.length cluster.Host.free > stations then incr violations
  in
  for i = 1 to 40 do
    Des.spawn sim (fun () ->
        Des.delay (0.1 *. float_of_int (i mod 7));
        let ws = Host.claim sim cluster in
        incr claimed;
        check_no_duplication ();
        Des.delay (1.0 +. float_of_int (i mod 3));
        decr claimed;
        Host.release_station sim cluster ws;
        check_no_duplication ())
  done;
  ignore (Des.run sim);
  Alcotest.(check int) "claimed + free <= stations throughout" 0 !violations;
  Alcotest.(check int) "all stations back in the pool" stations
    (Queue.length cluster.Host.free);
  Alcotest.(check int) "no waiters left" 0 (Queue.length cluster.Host.pool_waiters)

(* The ethernet's active-transfer count must drain to zero however the
   concurrent transfers interleave. *)
let test_ethernet_active_drains () =
  let sim = Des.create () in
  let e = Net.ethernet ~bytes_per_sec:1e6 () in
  let peak = ref 0 in
  for i = 1 to 12 do
    Des.spawn sim (fun () ->
        Des.delay (0.05 *. float_of_int (i mod 5));
        Net.transfer sim e ~bytes:(1e5 *. float_of_int (1 + (i mod 4)));
        peak := max !peak e.Net.active)
  done;
  ignore (Des.run sim);
  Alcotest.(check bool) "transfers overlapped" true (!peak >= 1);
  Alcotest.(check int) "active drains to zero" 0 e.Net.active;
  Alcotest.(check int) "all transfers counted" 12 e.Net.transfers

let prop_heap_order =
  QCheck.Test.make ~name:"events fire in time order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0.0 100.0))
    (fun delays ->
      let sim = Des.create () in
      let fired = ref [] in
      List.iter
        (fun d -> Des.spawn sim (fun () -> Des.delay d; fired := d :: !fired))
        delays;
      ignore (Des.run sim);
      let fired = List.rev !fired in
      fired = List.stable_sort compare delays && List.length fired = List.length delays)

let suites =
  [
    ( "netsim.des",
      [
        Alcotest.test_case "delay ordering" `Quick test_delay_ordering;
        Alcotest.test_case "equal-time fifo" `Quick test_equal_time_fifo;
        Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
        QCheck_alcotest.to_alcotest prop_heap_order;
      ] );
    ( "netsim.sync",
      [
        Alcotest.test_case "mailbox" `Quick test_mailbox;
        Alcotest.test_case "resource serializes" `Quick test_resource_serializes;
        Alcotest.test_case "capacity two" `Quick test_resource_capacity_two;
        Alcotest.test_case "join" `Quick test_join;
        Alcotest.test_case "join zero" `Quick test_join_zero;
      ] );
    ( "netsim.net",
      [
        Alcotest.test_case "ethernet solo" `Quick test_ethernet_uncontended;
        Alcotest.test_case "ethernet contention" `Quick test_ethernet_contention;
        Alcotest.test_case "ethernet active drains" `Quick test_ethernet_active_drains;
        Alcotest.test_case "fileserver queue" `Quick test_fileserver_queues;
      ] );
    ( "netsim.host",
      [
        Alcotest.test_case "compute with factor" `Quick test_workstation_compute_factor;
        Alcotest.test_case "cluster fcfs" `Quick test_cluster_claim_fcfs;
        Alcotest.test_case "claim/release storm" `Quick test_cluster_claim_storm;
      ] );
  ]
