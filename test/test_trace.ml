(* Tests for the observability layer: the span store, the metrics
   registry, the exporters, and the trace-derived views that must agree
   with the Timings bookkeeping — including the acceptance bar that
   tracing (enabled or not) never moves a simulated timing by a bit. *)

open Parallel_cc

let work count = Experiment.s_program_work ~size:W2.Gen.Tiny ~count ()

(* One parallel run of a [count]-function Tiny module with a fresh
   trace wired in (pool: one station per task plus the master's). *)
let traced_run ?(faults = Netsim.Fault.none)
    ?(budget = Config.default.Config.retry_budget) count =
  let mw = work count in
  let plan = Plan.one_per_station mw in
  let tr = Trace.create () in
  let cfg =
    {
      Config.default with
      Config.stations = count + 1;
      noise_seed = 0;
      faults;
      retry_budget = budget;
      trace = tr;
    }
  in
  let o = Parrun.run cfg mw plan in
  (tr, o.Parrun.run)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- span store --- *)

let test_span_store () =
  let tr = Trace.create () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  Trace.span tr ~track:1 ~cat:"cpu" ~name:"a" ~t0:0.0 ~t1:2.0 ();
  Trace.span tr ~track:2 ~cat:"net" ~name:"b"
    ~args:[ ("bytes", "10") ]
    ~t0:1.0 ~t1:3.0 ();
  Trace.instant tr ~track:1 ~cat:"task" ~name:"retry" ~at:2.5 ();
  Alcotest.(check int) "2 spans" 2 (Trace.span_count tr);
  Alcotest.(check int) "1 instant" 1 (Trace.instant_count tr);
  (match Trace.spans tr with
  | [ a; b ] ->
    Alcotest.(check string) "emission order (first)" "a" a.Trace.name;
    Alcotest.(check string) "emission order (second)" "b" b.Trace.name
  | _ -> Alcotest.fail "expected exactly 2 spans");
  Alcotest.(check (float 0.0)) "end time" 3.0 (Trace.end_time tr);
  Alcotest.(check (list int)) "used tracks" [ 1; 2 ] (Trace.used_tracks tr);
  Trace.clear tr;
  Alcotest.(check int) "cleared spans" 0 (Trace.span_count tr);
  Alcotest.(check int) "cleared instants" 0 (Trace.instant_count tr)

let test_span_negative_duration () =
  let tr = Trace.create () in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Trace.span: negative duration") (fun () ->
      Trace.span tr ~track:0 ~cat:"cpu" ~name:"bad" ~t0:2.0 ~t1:1.0 ())

let test_end_time_ignores_fault_windows () =
  let tr = Trace.create () in
  Trace.span tr ~track:1 ~cat:"cpu" ~name:"slice" ~t0:0.0 ~t1:5.0 ();
  Trace.span tr ~track:1 ~cat:"fault" ~name:"slowdown" ~t0:0.0 ~t1:1000.0 ();
  Alcotest.(check (float 0.0)) "fault window excluded" 5.0 (Trace.end_time tr)

let test_noop_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.none);
  Trace.span Trace.none ~track:0 ~cat:"cpu" ~name:"x" ~t0:0.0 ~t1:1.0 ();
  Trace.instant Trace.none ~track:0 ~cat:"task" ~name:"y" ~at:0.0 ();
  Alcotest.(check int) "no spans recorded" 0 (Trace.span_count Trace.none);
  Alcotest.(check int) "no instants recorded" 0 (Trace.instant_count Trace.none)

let test_farg_round_trip () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%h round-trips" v)
        v
        (float_of_string (Trace.farg v)))
    [ 0.0; 1.0; 474.68423155906299; 1.0 /. 3.0; 1e-17; 123456.789; 662.6908466628729 ]

(* --- exporters --- *)

(* Brace/bracket balance; none of our span names or args contain
   braces, so this is a meaningful structural check without a parser
   (CI additionally json-parses the CLI's output). *)
let balanced s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (function
      | '{' | '[' -> incr depth
      | '}' | ']' ->
        decr depth;
        if !depth < 0 then ok := false
      | _ -> ())
    s;
  !ok && !depth = 0

let test_chrome_json () =
  let tr, _ = traced_run 4 in
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "balanced" true (balanced json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains json needle))
    [
      "\"traceEvents\"";
      "\"displayTimeUnit\"";
      "\"ph\": \"X\"";
      "\"ph\": \"M\"";
      "thread_name";
      "station 0 (master)";
      "ethernet";
      "file server";
      "phase23";
      "write-back";
    ];
  Alcotest.(check bool) "no NaN leaks" false (contains json "nan")

let test_gantt_render () =
  let tr, _ = traced_run 4 in
  let rendered = Stats.Table.render (Trace.gantt tr) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains rendered needle))
    [ "station 0 (master)"; "station 4"; "ethernet"; "file server"; "#" ]

(* --- metrics registry --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "c" ();
  Metrics.incr m "c" ~by:2.0 ();
  Alcotest.(check (float 0.0)) "counter" 3.0 (Metrics.counter m "c");
  Alcotest.(check (float 0.0)) "absent counter" 0.0 (Metrics.counter m "nope");
  Metrics.set_gauge m "g" 4.0;
  Alcotest.(check (option (float 0.0))) "gauge" (Some 4.0) (Metrics.gauge m "g");
  List.iter (Metrics.observe m "h") [ 4.0; 1.0; 3.0; 2.0 ];
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 4 h.Metrics.h_count;
    Alcotest.(check (float 1e-12)) "mean" 2.5 (Metrics.mean h);
    Alcotest.(check (float 0.0)) "median" 2.0 (Metrics.quantile h 0.5);
    Alcotest.(check (float 0.0)) "p100" 4.0 (Metrics.quantile h 1.0);
    Alcotest.(check (float 0.0)) "min" 1.0 h.Metrics.h_min;
    Alcotest.(check (float 0.0)) "max" 4.0 h.Metrics.h_max

let test_max_overlap () =
  Alcotest.(check int) "empty" 0 (Metrics.max_overlap []);
  Alcotest.(check int) "disjoint" 1 (Metrics.max_overlap [ (0.0, 1.0); (2.0, 3.0) ]);
  Alcotest.(check int) "nested" 3
    (Metrics.max_overlap [ (0.0, 10.0); (1.0, 5.0); (2.0, 3.0) ]);
  Alcotest.(check int) "touching intervals do not overlap" 1
    (Metrics.max_overlap [ (0.0, 1.0); (1.0, 2.0) ])

let test_metrics_of_trace () =
  let tr, run = traced_run 4 in
  let m = Metrics.of_trace tr in
  Alcotest.(check (float 0.0)) "spans counter"
    (float_of_int (Trace.span_count tr))
    (Metrics.counter m "spans");
  Alcotest.(check bool) "cpu accounted" true (Metrics.counter m "cpu_seconds" > 0.0);
  Alcotest.(check bool) "phase 2+3 dominates startup" true
    (Metrics.counter m "cpu.phase23_seconds" > Metrics.counter m "cpu.sched_seconds");
  Alcotest.(check bool) "ether traffic" true (Metrics.counter m "ether_bytes" > 0.0);
  Alcotest.(check bool) "fs traffic" true (Metrics.counter m "fs_requests" > 0.0);
  (* The latest non-fault span ends exactly when the master reports. *)
  Alcotest.(check (option (float 0.0))) "elapsed gauge"
    (Some run.Timings.elapsed)
    (Metrics.gauge m "elapsed_seconds");
  Alcotest.(check (float 0.0)) "no fallbacks" 0.0 (Metrics.counter m "fallback_tasks");
  Alcotest.(check (option (float 0.0))) "no stations lost" (Some 0.0)
    (Metrics.gauge m "stations_lost");
  match Metrics.histogram m "cpu_slowdown_factor" with
  | None -> Alcotest.fail "slowdown histogram missing"
  | Some h ->
    Alcotest.(check bool) "slowdowns never speed up" true (h.Metrics.h_min >= 1.0)

(* --- task-lifecycle chains (4-function module) --- *)

let test_lifecycle_chains () =
  let mw = work 4 in
  let tr, _ = traced_run 4 in
  let spans = Trace.spans tr in
  List.iter
    (fun (fw : Driver.Compile.func_work) ->
      let name = fw.Driver.Compile.fw_name in
      let stages =
        List.filter
          (fun (s : Trace.span) ->
            s.Trace.cat = "task" && List.assoc_opt "task" s.Trace.args = Some name)
          spans
      in
      let stage n =
        match List.find_opt (fun (s : Trace.span) -> s.Trace.name = n) stages with
        | Some s -> s
        | None -> Alcotest.fail (Printf.sprintf "%s: missing %s span" name n)
      in
      let chain = [ "claim"; "transfer"; "parse"; "phase23"; "write-back" ] in
      (* Complete, ordered, and on a single station's track. *)
      ignore (List.map stage chain);
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s before %s" name a b)
            true
            ((stage a).Trace.t1 <= (stage b).Trace.t0 +. 1e-9);
          ordered rest
        | _ -> ()
      in
      ordered chain;
      List.iter
        (fun n ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s on the claimed station" name n)
            (stage "claim").Trace.track (stage n).Trace.track)
        chain)
    (Driver.Compile.all_funcs mw)

(* --- faults: recovery events in the trace, derived counters agree --- *)

let test_fault_trace () =
  let _, free = traced_run 4 in
  (* Every pool station dies early under a one-retry budget: the run
     must retry, lose attempts, waste CPU and fall back — exercising
     every recovery event the trace records. *)
  let faults =
    {
      Netsim.Fault.events =
        List.map
          (fun s ->
            Netsim.Fault.Crash
              { station = s; at = (0.05 *. free.Timings.elapsed) +. float_of_int s })
          [ 1; 2; 3; 4 ];
    }
  in
  let tr, run = traced_run ~faults ~budget:1 4 in
  (* Parrun.run already asserted the equivalence on its fresh trace;
     do it once more explicitly, then check the derived registry. *)
  Traceview.assert_matches_run tr run;
  Alcotest.(check bool) "crashes forced a retry" true (run.Timings.retries >= 1);
  Alcotest.(check bool) "budget exhaustion forced a fallback" true
    (run.Timings.fallback_tasks >= 1);
  let instants = Trace.instants tr in
  let count name =
    List.length
      (List.filter
         (fun (i : Trace.instant) -> i.Trace.i_cat = "task" && i.Trace.i_name = name)
         instants)
  in
  Alcotest.(check int) "retry instants" run.Timings.retries (count "retry");
  (* Which loss signal fires depends on where the attempt was when its
     station died: mid-compute raises [Lost] ("attempt-lost"), while an
     attempt parked in a pool claim or a network fetch is only ever
     reclaimed by the master's watchdog ("timeout").  Either way the
     trace must carry at least one loss signal. *)
  Alcotest.(check bool) "loss signal traced (timeout or attempt-lost)" true
    (count "attempt-lost" + count "timeout" >= 1);
  Alcotest.(check bool) "crash instant traced" true
    (List.exists
       (fun (i : Trace.instant) ->
         i.Trace.i_cat = "fault" && i.Trace.i_name = "crash"
         && i.Trace.i_track = 2)
       instants);
  Alcotest.(check bool) "fallback span traced" true
    (List.exists
       (fun (s : Trace.span) -> s.Trace.cat = "task" && s.Trace.name = "fallback")
       (Trace.spans tr));
  Alcotest.(check bool) "wasted instants carry CPU" true
    (List.exists
       (fun (i : Trace.instant) ->
         i.Trace.i_name = "wasted"
         && (match Trace.arg_float "cpu" i.Trace.i_args with
            | Some v -> v > 0.0
            | None -> false))
       instants);
  let m = Metrics.of_trace tr in
  Alcotest.(check (float 0.0)) "retries derived"
    (float_of_int run.Timings.retries)
    (Metrics.counter m "retries");
  Alcotest.(check (float 0.0)) "fallbacks derived"
    (float_of_int run.Timings.fallback_tasks)
    (Metrics.counter m "fallback_tasks");
  Alcotest.(check (float 0.0)) "wasted CPU derived" run.Timings.wasted_cpu
    (Metrics.counter m "wasted_cpu_seconds");
  Alcotest.(check (option (float 0.0))) "stations lost derived"
    (Some (float_of_int run.Timings.stations_lost))
    (Metrics.gauge m "stations_lost")

(* --- overhead decomposition from the trace alone --- *)

let test_decomposition_agrees () =
  List.iter
    (fun (size, counts) ->
      List.iter
        (fun count ->
          let mw = Experiment.s_program_work ~size ~count () in
          let plan = Plan.one_per_station mw in
          let n_fm = Plan.task_count plan in
          let tr = Trace.create () in
          let cfg =
            {
              Config.default with
              Config.stations = n_fm + 1;
              noise_seed = 1 + (17 * n_fm);
              trace = tr;
            }
          in
          let seq =
            Seqrun.run { cfg with Config.stations = 1; trace = Trace.none } mw
          in
          let par = (Parrun.run cfg mw plan).Parrun.run in
          let c = Timings.compare_runs ~processors:n_fm ~seq ~par in
          let d =
            Traceview.decompose ~processors:n_fm
              ~seq_elapsed:seq.Timings.elapsed tr
          in
          let check name a b =
            Alcotest.(check (float 1e-6))
              (Printf.sprintf "%s n=%d: %s" (W2.Gen.size_name size) count name)
              a b
          in
          check "elapsed" par.Timings.elapsed d.Traceview.d_elapsed;
          check "total overhead" c.Timings.total_overhead d.Traceview.d_total_overhead;
          check "impl overhead" c.Timings.impl_overhead d.Traceview.d_impl_overhead;
          check "sys overhead" c.Timings.sys_overhead d.Traceview.d_sys_overhead;
          check "rel total" c.Timings.rel_total_overhead d.Traceview.d_rel_total_overhead;
          check "rel sys" c.Timings.rel_sys_overhead d.Traceview.d_rel_sys_overhead)
        counts)
    [ (W2.Gen.Small, [ 2; 4; 8 ]); (W2.Gen.Medium, [ 2; 4 ]) ]

(* --- tracing must not move the simulation --- *)

let test_tracing_leaves_timings_unchanged () =
  let mw = work 4 in
  let plan = Plan.one_per_station mw in
  let run trace =
    (Parrun.run
       { Config.default with Config.stations = 5; noise_seed = 3; trace }
       mw plan)
      .Parrun.run
  in
  let plain = run Trace.none in
  let traced = run (Trace.create ()) in
  Alcotest.(check (float 0.0)) "elapsed bit-identical" plain.Timings.elapsed
    traced.Timings.elapsed;
  Alcotest.(check (float 0.0)) "master CPU bit-identical" plain.Timings.master_cpu
    traced.Timings.master_cpu;
  Alcotest.(check (list (float 0.0))) "per-station CPU bit-identical"
    plain.Timings.cpu_per_station traced.Timings.cpu_per_station

(* Golden pre-observability speedups, captured before this layer was
   wired in: with tracing disabled the full measurement pipeline must
   reproduce them bit for bit. *)
let test_golden_speedups () =
  let case name size count ~speedup ~seq ~par =
    let mw = Experiment.s_program_work ~size ~count () in
    let c = Experiment.measure mw in
    Alcotest.(check (float 0.0)) (name ^ " seq elapsed") seq
      c.Timings.seq.Timings.elapsed;
    Alcotest.(check (float 0.0)) (name ^ " par elapsed") par
      c.Timings.par.Timings.elapsed;
    Alcotest.(check (float 0.0)) (name ^ " speedup") speedup c.Timings.speedup
  in
  case "small4" W2.Gen.Small 4 ~speedup:2.6328007896237846
    ~seq:474.68423155906299 ~par:180.29629641173619;
  case "medium2" W2.Gen.Medium 2 ~speedup:1.8241640057736108
    ~seq:1208.8567894380519 ~par:662.6908466628729

let suites =
  [
    ( "trace.store",
      [
        Alcotest.test_case "span store" `Quick test_span_store;
        Alcotest.test_case "negative duration" `Quick test_span_negative_duration;
        Alcotest.test_case "end time skips fault windows" `Quick
          test_end_time_ignores_fault_windows;
        Alcotest.test_case "no-op sink" `Quick test_noop_sink;
        Alcotest.test_case "farg round-trip" `Quick test_farg_round_trip;
      ] );
    ( "trace.export",
      [
        Alcotest.test_case "chrome json" `Quick test_chrome_json;
        Alcotest.test_case "gantt render" `Quick test_gantt_render;
      ] );
    ( "trace.metrics",
      [
        Alcotest.test_case "registry" `Quick test_metrics_registry;
        Alcotest.test_case "max overlap" `Quick test_max_overlap;
        Alcotest.test_case "derivation" `Quick test_metrics_of_trace;
      ] );
    ( "trace.runs",
      [
        Alcotest.test_case "lifecycle chains" `Quick test_lifecycle_chains;
        Alcotest.test_case "fault recovery traced" `Quick test_fault_trace;
        Alcotest.test_case "decomposition agrees" `Slow test_decomposition_agrees;
        Alcotest.test_case "tracing leaves timings unchanged" `Quick
          test_tracing_leaves_timings_unchanged;
        Alcotest.test_case "golden speedups" `Slow test_golden_speedups;
      ] );
  ]
