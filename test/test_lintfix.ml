(* Table-driven lint fixture suite.

   Every shipped example program is pinned to its exact diagnostic
   multiset under the full single-module pipeline — the same
   [Depan.lint t @ Lint.lint_module m] stream `warpcc check --lint`
   and `warpcc compile` emit — so adding a lint (or changing a
   judgment call) shows up as a table diff, not as a silently drifting
   ad-hoc test.  The [lint_w0NN.w2] fixtures are minimal witnesses:
   each triggers exactly its own code.

   W005 (assignment to a for-loop variable) is a semantic error in
   W2, so no semantically valid fixture file can witness it; it is
   covered in-source on the raw (unchecked) AST, the only place the
   linter can still see one. *)

let example_dir () =
  (* [dune runtest] runs in _build/default/test (examples are a sibling
     via the dune deps); [dune exec] runs from the project root. *)
  List.find Sys.file_exists [ Filename.concat ".." "examples"; "examples" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The fixture table: file → exact expected code multiset (sorted). *)
let fixtures =
  [
    ("lint_clean.w2", []);
    ("lint_w001.w2", [ "W001" ]);
    ("lint_w002.w2", [ "W002" ]);
    ("lint_w003.w2", [ "W003" ]);
    ("lint_w004.w2", [ "W004" ]);
    ("lint_w006.w2", [ "W006" ]);
    ("lint_w007.w2", [ "W007" ]);
    ("lint_w008.w2", [ "W008" ]);
    ("lint_w009.w2", [ "W009" ]);
    ("coupled.w2", [ "W007"; "W008"; "W009" ]);
    ("fir.w2", []);
    ("matvec.w2", []);
    ("partitioned.w2", [ "W008" ]);
    ("primes.w2", []);
    ("racy.w2", [ "W002"; "W002"; "W002"; "W007"; "W007"; "W008" ]);
  ]

let codes_of_file file =
  let path = Filename.concat (example_dir ()) file in
  let m = W2.Parser.module_of_string ~file:path (read_file path) in
  W2.Semcheck.check_module_exn m;
  let t = Analysis.Depan.analyze m in
  W2.Diag.sort (Analysis.Depan.lint t @ W2.Lint.lint_module m)
  |> List.map (fun d -> d.W2.Diag.d_code)
  |> List.sort compare

let test_fixture (file, expected) () =
  Alcotest.(check (list string)) file expected (codes_of_file file)

(* every committed example appears in the table: a new .w2 file must
   declare its expected lints or this fails *)
let test_table_is_total () =
  let on_disk =
    Sys.readdir (example_dir ())
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".w2")
    |> List.sort compare
  in
  Alcotest.(check (list string)) "fixture table covers examples/"
    (List.sort compare (List.map fst fixtures))
    on_disk

(* W005 on the raw AST: the parser accepts it, semcheck rejects it,
   and the linter still warns for tools that lint before checking. *)
let test_w005_raw_ast () =
  let m =
    W2.Parser.module_of_string
      {|module m
  section s cells 1
  function f(n: int)
    var i : int;
  begin
    for i := 0 to n do
      i := 0;
    end;
  end
  end
end
|}
  in
  Alcotest.(check bool) "semcheck rejects" true
    (W2.Semcheck.check_module m <> []);
  Alcotest.(check bool) "linter warns W005" true
    (List.exists
       (fun d -> d.W2.Diag.d_code = "W005")
       (W2.Lint.lint_module m))

let suites =
  [
    ( "w2.lintfix",
      Alcotest.test_case "table covers examples/" `Quick test_table_is_total
      :: Alcotest.test_case "W005 on the raw AST" `Quick test_w005_raw_ast
      :: List.map
           (fun ((file, _) as fx) ->
             Alcotest.test_case file `Quick (test_fixture fx))
           fixtures );
  ]
