(* Tests for procedure inlining (section 5.1): expansion fires where it
   is safe, declines where it is not, and never changes semantics. *)

open W2

let parse src =
  let m = Parser.module_of_string src in
  Semcheck.check_module_exn m;
  m

let run_main ?(args = [ Interp.Vint 3 ]) (m : Ast.modul) =
  Interp.run_function ~fuel:2_000_000 (List.hd m.Ast.sections) ~name:"main" ~args

let check_semantics_preserved ?args src =
  let m = parse src in
  let expected = run_main ?args m in
  let inlined, stats = Inline.expand_module m in
  (* The expanded module must still type-check. *)
  (match Semcheck.check_module inlined with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "inlined module does not check: %s\n%s"
      (Semcheck.error_to_string e)
      (Pretty.module_to_string inlined));
  let got = run_main ?args inlined in
  Alcotest.check
    (Alcotest.option Tutil.value_testable)
    "same result" expected got;
  stats

let basic =
  {|
module m
  section s cells 1
  function double(x: float) : float
  begin
    return x * 2.0;
  end
  function main(n: int) : float
    var i : int;
    var acc : float;
  begin
    acc := 0.5;
    for i := 1 to n do
      acc := acc + double(float(i));
    end;
    return double(acc) + 1.0;
  end
  end
end
|}

let test_basic_inlines () =
  let stats = check_semantics_preserved basic in
  Alcotest.(check int) "two call sites inlined" 2 stats.Inline.inlined

let test_function_grows () =
  let m = parse basic in
  let inlined, _ = Inline.expand_module m in
  let loc name mm =
    match Ast.find_function mm ~section:"s" ~name with
    | Some f -> Pretty.func_loc f
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check bool) "main grew" true (loc "main" inlined > loc "main" m)

let test_early_return_not_inlined () =
  let src =
    {|
module m
  section s cells 1
  function clamp(x: int) : int
  begin
    if x > 10 then
      return 10;
    end;
    return x;
  end
  function main(n: int) : int
  begin
    return clamp(n * 7);
  end
  end
end
|}
  in
  let stats = check_semantics_preserved src in
  Alcotest.(check int) "nothing inlined" 0 stats.Inline.inlined

let test_nested_callee_not_inlined () =
  let src =
    {|
module m
  section s cells 1
  function a(x: int) : int
  begin
    return x + 1;
  end
  function b(x: int) : int
  begin
    return a(x) * 2;
  end
  function main(n: int) : int
  begin
    return b(n);
  end
  end
end
|}
  in
  (* [b] calls [a], so [b] is not a leaf; but the [a(x)] inside b IS
     expanded when b's body is processed... b is skipped as a callee yet
     rewritten as a caller. *)
  let m = parse src in
  let inlined, stats = Inline.expand_module m in
  Semcheck.check_module_exn inlined;
  Alcotest.(check bool) "a inlined into b" true (stats.Inline.inlined >= 1);
  let expected = run_main m and got = run_main inlined in
  Alcotest.check (Alcotest.option Tutil.value_testable) "same" expected got

let test_while_condition_untouched () =
  let src =
    {|
module m
  section s cells 1
  function step(x: int) : int
  begin
    return x - 2;
  end
  function main(n: int) : int
    var w : int;
  begin
    w := n + 6;
    while step(w) > 0 do
      w := w - 1;
    end;
    return w;
  end
  end
end
|}
  in
  let m = parse src in
  let inlined, _stats = Inline.expand_module m in
  Semcheck.check_module_exn inlined;
  (* The while condition still calls step. *)
  let main = Option.get (Ast.find_function inlined ~section:"s" ~name:"main") in
  let keeps_call =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.s with
        | Ast.While ({ e = Ast.Binary (_, { e = Ast.Call ("step", _); _ }, _); _ }, _) -> true
        | _ -> false)
      main.Ast.body
  in
  Alcotest.(check bool) "while condition untouched" true keeps_call;
  let expected = run_main m and got = run_main inlined in
  Alcotest.check (Alcotest.option Tutil.value_testable) "same" expected got

let test_short_circuit_rhs_untouched () =
  let src =
    {|
module m
  section s cells 1
  function positive(x: int) : bool
  begin
    return x > 0;
  end
  function main(n: int) : int
  begin
    if n > 100 and positive(n - 1000) then
      return 1;
    end;
    return 0;
  end
  end
end
|}
  in
  let stats = check_semantics_preserved src in
  (* The one call site sits under the right operand of [and]. *)
  Alcotest.(check int) "not inlined" 0 stats.Inline.inlined

let test_channel_order_preserved () =
  let src =
    {|
module m
  section s cells 1
  function emit(x: float) : float
  begin
    send(X, x);
    return x * 2.0;
  end
  function main(n: int) : float
    var a : float;
  begin
    a := emit(1.0) + emit(2.0);
    send(X, a);
    return a;
  end
  end
end
|}
  in
  let m = parse src in
  let run mm =
    let channels, outputs = Interp.queue_channels ~input_x:[] ~input_y:[] in
    let r =
      Interp.run_function ~channels (List.hd mm.Ast.sections) ~name:"main"
        ~args:[ Interp.Vint 0 ]
    in
    (r, fst (outputs ()))
  in
  let r0, out0 = run m in
  let inlined, stats = Inline.expand_module m in
  Semcheck.check_module_exn inlined;
  Alcotest.(check int) "both sites inlined" 2 stats.Inline.inlined;
  let r1, out1 = run inlined in
  Alcotest.check (Alcotest.option Tutil.value_testable) "value" r0 r1;
  Alcotest.(check int) "same send count" (List.length out0) (List.length out1);
  List.iter2
    (fun a b -> Alcotest.check Tutil.value_testable "send order" a b)
    out0 out1

let test_size_threshold () =
  (* A callee beyond the size threshold stays out of line.  (30 lines,
     scalar locals only — the array-local restriction stays out of the
     picture.) *)
  let callee = Gen.function_of_lines ~name:"bulky" 30 in
  let main =
    Parser.function_of_string
      {|
function main(n: int) : float
begin
  return bulky(n, 1) * 0.5;
end
|}
  in
  let m =
    {
      Ast.mname = "m";
      sections = [ { Ast.sname = "s"; cells = 1; globals = []; funcs = [ callee; main ]; secloc = Loc.dummy } ];
      imports = [];
      exports = [];
      mloc = Loc.dummy;
    }
  in
  Semcheck.check_module_exn m;
  let _, stats = Inline.expand_module ~max_lines:20 m in
  Alcotest.(check int) "bulky stays" 0 stats.Inline.inlined;
  let _, stats = Inline.expand_module ~max_lines:200 m in
  Alcotest.(check int) "inlined with a bigger budget" 1 stats.Inline.inlined

let prop_inline_preserves_semantics =
  QCheck.Test.make ~name:"inlining preserves semantics on random callees" ~count:80
    QCheck.(triple small_nat small_nat (int_range 0 40))
    (fun (seed, size, input) ->
      let callee =
        { (Gen.random_function ~seed ~size ()) with Ast.fname = "callee" }
      in
      let main =
        Parser.function_of_string
          {|
function main(k: int) : float
  var i : int;
  var acc : float;
begin
  acc := 0.0;
  for i := 0 to 2 do
    acc := acc + callee(k + i, 0.5) * 0.25;
  end;
  return acc;
end
|}
      in
      let m =
        {
          Ast.mname = "m";
          sections =
            [ { Ast.sname = "s"; cells = 1; globals = []; funcs = [ callee; main ]; secloc = Loc.dummy } ];
          imports = [];
          exports = [];
          mloc = Loc.dummy;
        }
      in
      if Semcheck.check_module m <> [] then true (* degenerate case; skip *)
      else begin
        let run mm =
          try
            Some
              (Interp.run_function ~fuel:500_000 (List.hd mm.Ast.sections) ~name:"main"
                 ~args:[ Interp.Vint (input mod 13) ])
          with Interp.Out_of_fuel | Interp.Runtime_error _ -> None
        in
        let expected = run m in
        let inlined, _ = Inline.expand_module ~max_lines:100 m in
        if Semcheck.check_module inlined <> [] then
          QCheck.Test.fail_reportf "inlined module fails to check (seed=%d)" seed
        else begin
          let got = run inlined in
          match (expected, got) with
          | None, None -> true
          | Some a, Some b when a = b -> true
          | Some (Some (Interp.Vfloat x)), Some (Some (Interp.Vfloat y))
            when abs_float (x -. y) <= 1e-9 *. (1.0 +. abs_float x) ->
            true
          | _ -> QCheck.Test.fail_reportf "semantics changed (seed=%d size=%d)" seed size
        end
      end)

let suites =
  [
    ( "w2.inline",
      [
        Alcotest.test_case "basic" `Quick test_basic_inlines;
        Alcotest.test_case "function grows" `Quick test_function_grows;
        Alcotest.test_case "early return blocked" `Quick test_early_return_not_inlined;
        Alcotest.test_case "nested callee" `Quick test_nested_callee_not_inlined;
        Alcotest.test_case "while condition" `Quick test_while_condition_untouched;
        Alcotest.test_case "short-circuit rhs" `Quick test_short_circuit_rhs_untouched;
        Alcotest.test_case "channel order" `Quick test_channel_order_preserved;
        Alcotest.test_case "size threshold" `Quick test_size_threshold;
        QCheck_alcotest.to_alcotest prop_inline_preserves_semantics;
      ] );
  ]
