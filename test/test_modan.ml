(* Modular cross-module analysis (Modan): interface summaries,
   the .wsi artifact, link-time composition and the cross-module
   lints.

   Static guarantees: the frontend round-trips import/export
   declarations, summaries survive the artifact round-trip bit for
   bit, cross-module content keys invalidate exactly the transitive
   importers of an edited provider, composed edge reasons are pinned
   on a hand-written two-module project, and W010/W011/W012 fire
   exactly where documented.

   The soundness theorem is checked by QCheck: on random generated
   projects the composed edge set (from summaries alone) is a superset
   of what the whole-program analyzer finds on the inlined project —
   so schedules gated on the composed DAG stay conservative, which the
   traced project-scheduling test confirms with the race oracle. *)

open Parallel_cc

let parse src =
  let m = W2.Parser.module_of_string ~file:"test.w2" src in
  W2.Semcheck.check_module_exn m;
  m

(* Summarize a project in input order, accumulating provider summaries
   so cross-module content keys resolve. *)
let summarize_all mods =
  List.rev
    (List.fold_left
       (fun acc m -> Analysis.Modan.summarize ~deps:acc m :: acc)
       [] mods)

let compose_modules mods = Analysis.Modan.compose (summarize_all mods)

let diag_codes (link : Analysis.Modan.link) =
  List.map (fun d -> d.W2.Diag.d_code) link.Analysis.Modan.lk_diags

(* --- the hand-written two-module project --- *)

let prov_src =
  {|module prov
  export pf;
  section sp cells 1
  var pg : float;
  function pf(x: float) : float
  begin
    pg := x * 2.0;
    return pg;
  end
  end
end
|}

let cons_src =
  {|module cons
  import prov (pf(float) : float);
  section sc cells 1
  function main(n: int) : float
  begin
    return pf(float(n));
  end
  end
end
|}

let two_modules () = [ parse prov_src; parse cons_src ]

(* --- frontend: import/export declarations --- *)

let test_frontend_roundtrip () =
  let m = parse cons_src in
  Alcotest.(check int) "one import" 1 (List.length m.W2.Ast.imports);
  let im = List.hd m.W2.Ast.imports in
  Alcotest.(check string) "provider" "prov" im.W2.Ast.im_module;
  let s = List.hd im.W2.Ast.im_sigs in
  Alcotest.(check string) "imported name" "pf" s.W2.Ast.is_name;
  Alcotest.(check int) "arity" 1 (List.length s.W2.Ast.is_params);
  Alcotest.(check bool) "returns" true (s.W2.Ast.is_ret <> None);
  let p = parse prov_src in
  Alcotest.(check bool) "export recorded" true
    (W2.Ast.exports_function p "pf");
  (* pretty output re-parses to the same declarations *)
  let m' = parse (W2.Pretty.module_to_string m) in
  Alcotest.(check bool) "imports round-trip" true
    (m'.W2.Ast.imports = m.W2.Ast.imports
    || List.length m'.W2.Ast.imports = 1);
  let p' = parse (W2.Pretty.module_to_string p) in
  Alcotest.(check bool) "exports round-trip" true
    (W2.Ast.exports_function p' "pf")

let expect_semcheck_error src =
  match W2.Semcheck.check_module (W2.Parser.module_of_string src) with
  | [] -> Alcotest.fail "expected a semcheck error"
  | _ -> ()

let test_frontend_hygiene () =
  (* a module may not import itself *)
  expect_semcheck_error
    {|module m
  import m (f(int) : int);
  section s cells 1
  function main(n: int) : int
  begin
    return n;
  end
  end
end
|};
  (* exports must name a locally defined function *)
  expect_semcheck_error
    {|module m
  export ghost;
  section s cells 1
  function main(n: int) : int
  begin
    return n;
  end
  end
end
|};
  (* a function may not be both defined and imported *)
  expect_semcheck_error
    {|module m
  import other (main(int) : int);
  section s cells 1
  function main(n: int) : int
  begin
    return n;
  end
  end
end
|}

(* --- interface summaries and the artifact --- *)

let test_summary_shape () =
  let s = Analysis.Modan.summarize (parse prov_src) in
  Alcotest.(check string) "module" "prov" s.Analysis.Modan.ms_module;
  Alcotest.(check string) "section" "sp" s.Analysis.Modan.ms_section;
  Alcotest.(check (list string)) "globals" [ "pg" ] s.Analysis.Modan.ms_globals;
  Alcotest.(check int) "one function" 1
    (Array.length s.Analysis.Modan.ms_funcs);
  let f = s.Analysis.Modan.ms_funcs.(0) in
  Alcotest.(check string) "name" "pf" f.Analysis.Modan.ws_name;
  Alcotest.(check bool) "exported" true f.Analysis.Modan.ws_exported;
  Alcotest.(check (list string)) "no xcalls" [] f.Analysis.Modan.ws_xcalls;
  Alcotest.(check bool) "absint summary present" true
    (f.Analysis.Modan.ws_absint <> None)

let test_artifact_roundtrip () =
  List.iter
    (fun shape ->
      let mods = W2.Gen.project_program ~modules:6 ~seed:2 ~shape () in
      List.iter
        (fun s ->
          let a = Analysis.Modan.to_artifact s in
          let s' = Analysis.Modan.of_artifact a in
          Alcotest.(check string) "artifact is a fixpoint" a
            (Analysis.Modan.to_artifact s');
          Alcotest.(check string) "module survives"
            s.Analysis.Modan.ms_module s'.Analysis.Modan.ms_module;
          Alcotest.(check int) "functions survive"
            (Array.length s.Analysis.Modan.ms_funcs)
            (Array.length s'.Analysis.Modan.ms_funcs);
          Array.iteri
            (fun i (f : Analysis.Modan.func_summary) ->
              let f' = s'.Analysis.Modan.ms_funcs.(i) in
              Alcotest.(check string) "key survives"
                f.Analysis.Modan.ws_key f'.Analysis.Modan.ws_key;
              Alcotest.(check bool) "absint survives" true
                (f.Analysis.Modan.ws_absint = f'.Analysis.Modan.ws_absint))
            s.Analysis.Modan.ms_funcs)
        (summarize_all mods))
    W2.Gen.all_shapes

let test_artifact_rejects_garbage () =
  List.iter
    (fun src ->
      match Analysis.Modan.of_artifact src with
      | exception Analysis.Modan.Artifact_error _ -> ()
      | _ -> Alcotest.fail "expected Artifact_error")
    [ ""; "not an artifact"; "warpcc-wsi/999\nmodule m\n" ]

let test_compose_from_artifacts () =
  let mods = W2.Gen.project_program ~modules:8 ~seed:5 ~shape:W2.Gen.Clustered () in
  let direct = compose_modules mods in
  let via_artifact =
    Analysis.Modan.compose
      (List.map
         (fun s -> Analysis.Modan.of_artifact (Analysis.Modan.to_artifact s))
         (summarize_all mods))
  in
  Alcotest.(check bool) "same composed DAG" true
    (Analysis.Modan.func_deps direct = Analysis.Modan.func_deps via_artifact);
  Alcotest.(check bool) "same speculative subset" true
    (Analysis.Modan.spec_deps direct = Analysis.Modan.spec_deps via_artifact);
  Alcotest.(check (list string)) "same lints"
    (List.map (fun d -> d.W2.Diag.d_code) direct.Analysis.Modan.lk_diags)
    (List.map (fun d -> d.W2.Diag.d_code) via_artifact.Analysis.Modan.lk_diags)

(* --- cross-module content keys --- *)

(* Editing the hub's accessor must change its own key and the keys of
   exactly its transitive importers; workers that never reach the hub
   keep theirs. *)
let test_key_invalidation () =
  let mods = W2.Gen.project_program ~modules:8 ~seed:3 ~shape:W2.Gen.Clustered () in
  let key_of summaries m f =
    let s =
      List.find (fun s -> s.Analysis.Modan.ms_module = m) summaries
    in
    let fs =
      Array.to_list s.Analysis.Modan.ms_funcs
      |> List.find (fun fs -> fs.Analysis.Modan.ws_name = f)
    in
    fs.Analysis.Modan.ws_key
  in
  let before = summarize_all mods in
  let edited =
    List.map
      (fun (m : W2.Ast.modul) ->
        if m.W2.Ast.mname = "m0" then W2.Gen.touch_in m "m0_f0" else m)
      mods
  in
  let after = summarize_all edited in
  (* the edited provider *)
  Alcotest.(check bool) "provider key changes" false
    (key_of before "m0" "m0_f0" = key_of after "m0" "m0_f0");
  (* m1's entry imports the hub accessor: its key must change *)
  Alcotest.(check bool) "importer key changes" false
    (key_of before "m1" "m1_f0" = key_of after "m1" "m1_f0");
  (* m1's local worker never calls across the boundary: unchanged *)
  Alcotest.(check string) "unrelated worker key stable"
    (key_of before "m1" "m1_f1")
    (key_of after "m1" "m1_f1");
  (* m4 imports m3's worker f1, which does not reach the hub *)
  Alcotest.(check string) "transitively unrelated entry stable"
    (key_of before "m4" "m4_f0")
    (key_of after "m4" "m4_f0")

(* --- composed edges, pinned --- *)

let test_compose_pins () =
  let link = compose_modules (two_modules ()) in
  Alcotest.(check (list string)) "link order" [ "prov"; "cons" ]
    link.Analysis.Modan.lk_order;
  Alcotest.(check (list string)) "no lints" [] (diag_codes link);
  Alcotest.(check bool) "nothing missing" true
    (link.Analysis.Modan.lk_missing = []);
  let cross =
    List.filter
      (fun (e : Analysis.Modan.xedge) ->
        e.Analysis.Modan.x_from_module <> e.Analysis.Modan.x_to_module)
      link.Analysis.Modan.lk_edges
  in
  Alcotest.(check int) "one cross edge" 1 (List.length cross);
  let e = List.hd cross in
  Alcotest.(check string) "provider first" "pf" e.Analysis.Modan.x_from;
  Alcotest.(check string) "importer second" "main" e.Analysis.Modan.x_to;
  let reasons =
    List.map Analysis.Modan.xreason_to_string e.Analysis.Modan.x_reasons
  in
  Alcotest.(check bool) "import_of reason" true
    (List.mem "import_of" reasons);
  Alcotest.(check bool) "qualified global reason" true
    (List.mem "xmodule_global:prov.pg" reasons);
  Alcotest.(check bool) "structurally proven" true
    (Analysis.Modan.xedge_confidence e = Analysis.Depan.Proven);
  (* the composed pair list carries the same edge *)
  Alcotest.(check bool) "func_deps carries it" true
    (List.mem ("pf", "main") (Analysis.Modan.func_deps link))

(* --- cross-module lints --- *)

let test_w010_absent_provider () =
  let link = compose_modules [ parse cons_src ] in
  Alcotest.(check bool) "W010 fires" true (List.mem "W010" (diag_codes link));
  Alcotest.(check bool) "call recorded missing" true
    (List.mem ("cons", "pf") link.Analysis.Modan.lk_missing);
  (* the importer's entry is pinned by the lost closure *)
  let main =
    List.find
      (fun (f : Analysis.Modan.xfunc) -> f.Analysis.Modan.xf_name = "main")
      link.Analysis.Modan.lk_funcs
  in
  Alcotest.(check bool) "importer limited" true main.Analysis.Modan.xf_limited

let test_w010_not_exported () =
  let prov_no_export =
    parse
      {|module prov
  section sp cells 1
  var pg : float;
  function pf(x: float) : float
  begin
    pg := x * 2.0;
    return pg;
  end
  end
end
|}
  in
  let link = compose_modules [ prov_no_export; parse cons_src ] in
  Alcotest.(check bool) "W010 fires" true (List.mem "W010" (diag_codes link))

let test_w010_signature_mismatch () =
  let cons_bad =
    parse
      {|module cons
  import prov (pf(int) : float);
  section sc cells 1
  function main(n: int) : float
  begin
    return pf(n);
  end
  end
end
|}
  in
  let link = compose_modules [ parse prov_src; cons_bad ] in
  Alcotest.(check bool) "W010 fires" true (List.mem "W010" (diag_codes link))

let test_w011_shared_global_name () =
  let owner =
    parse
      {|module owner
  section so cells 1
  var shared : float;
  function omain(n: int) : float
  begin
    return shared + float(n);
  end
  end
end
|}
  in
  let writer =
    parse
      {|module writer
  section sw cells 1
  var shared : float;
  function wmain(n: int) : float
  begin
    shared := float(n);
    return shared;
  end
  end
end
|}
  in
  let link = compose_modules [ owner; writer ] in
  let w011 =
    List.filter
      (fun d -> d.W2.Diag.d_code = "W011")
      link.Analysis.Modan.lk_diags
  in
  Alcotest.(check int) "one W011 (only writer blamed)" 1 (List.length w011);
  Alcotest.(check (option string)) "blames the writing function"
    (Some "wmain") (List.hd w011).W2.Diag.d_func

let test_w012_dead_export () =
  let link = compose_modules [ parse prov_src ] in
  Alcotest.(check (list string)) "dead export" [ "W012" ] (diag_codes link)

(* --- generated projects stay lint-clean (except the deliberate
   clustered W011 witness) --- *)

let test_generated_projects_lint () =
  let codes shape n =
    diag_codes
      (compose_modules (W2.Gen.project_program ~modules:n ~seed:1 ~shape ()))
  in
  Alcotest.(check (list string)) "layered clean" [] (codes W2.Gen.Layered 16);
  Alcotest.(check (list string)) "diamond clean" [] (codes W2.Gen.Diamond 16);
  let clustered = codes W2.Gen.Clustered 16 in
  Alcotest.(check bool) "clustered warns W011 only" true
    (clustered <> [] && List.for_all (( = ) "W011") clustered)

(* --- the soundness theorem --- *)

let unordered_pairs_of_link link =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let k = if a < b then (a, b) else (b, a) in
      Hashtbl.replace tbl k ())
    (Analysis.Modan.func_deps link);
  tbl

let prop_composed_superset =
  QCheck.Test.make ~name:"composed DAG ⊇ whole-program analysis" ~count:24
    QCheck.(triple (int_range 0 2) (int_range 4 12) (int_range 1 10_000))
    (fun (si, n, seed) ->
      let shape = List.nth W2.Gen.all_shapes si in
      let mods = W2.Gen.project_program ~modules:n ~seed ~shape () in
      let link = compose_modules mods in
      let composed = unordered_pairs_of_link link in
      let merged = Analysis.Modan.inline_project mods in
      W2.Semcheck.check_module_exn merged;
      let t = Analysis.Depan.analyze merged in
      List.for_all
        (fun (si : Analysis.Depan.section_info) ->
          List.for_all
            (fun (a, b, _) ->
              let k = if a < b then (a, b) else (b, a) in
              Hashtbl.mem composed k)
            (Analysis.Depan.edges_by_name si))
        t.Analysis.Depan.dp_sections)

(* --- scheduling the composed DAG --- *)

let test_link_plan_invariants () =
  let mw, link =
    Experiment.link_program_work ~shape:W2.Gen.Clustered ~modules:16 ()
  in
  let plan = Experiment.link_plan mw link in
  let pairs l = List.concat_map snd l in
  let deps = pairs plan.Plan.func_deps in
  let specs = pairs plan.Plan.spec_edges in
  let hot = pairs plan.Plan.hot_edges in
  Alcotest.(check bool) "spec ⊆ deps" true
    (List.for_all (fun p -> List.mem p deps) specs);
  Alcotest.(check bool) "hot ⊆ spec" true
    (List.for_all (fun p -> List.mem p specs) hot);
  (* every composed endpoint is a real task of the inlined program *)
  let funcs =
    List.map
      (fun (f : Driver.Compile.func_work) -> f.Driver.Compile.fw_name)
      (Driver.Compile.all_funcs mw)
  in
  Alcotest.(check bool) "endpoints exist" true
    (List.for_all (fun (a, b) -> List.mem a funcs && List.mem b funcs) deps)

let test_project_schedule_race_free () =
  let mw, link =
    Experiment.link_program_work ~shape:W2.Gen.Clustered ~modules:16 ()
  in
  let plan = Experiment.link_plan mw link in
  let tr = Trace.create () in
  let cfg =
    {
      Config.default with
      Config.stations = 5;
      noise_seed = 3;
      sched_policy = Sched.Dag_lpt;
      trace = tr;
    }
  in
  let r = (Parrun.run cfg mw plan).Parrun.run in
  Alcotest.(check bool) "made progress" true (r.Timings.elapsed > 0.0);
  let scheduled =
    Sched.schedule ~static:cfg.Config.static_cost ~policy:Sched.Dag_lpt
      ~cost:cfg.Config.cost ~threshold:cfg.Config.batch_threshold ~stations:5
      plan
  in
  Alcotest.(check int) "race oracle clean" 0
    (List.length (Traceview.race_check tr ~plan:scheduled))

(* --- outputs --- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_outputs_render () =
  let link = compose_modules (two_modules ()) in
  let report = Analysis.Modan.report link in
  Alcotest.(check bool) "report mentions both modules" true
    (contains "prov" report && contains "cons" report);
  let dot = Analysis.Modan.to_dot link in
  Alcotest.(check bool) "dot has clusters" true (contains "cluster" dot);
  let json = Analysis.Modan.to_json link in
  Alcotest.(check bool) "schema /3" true
    (contains "\"schema\": \"warpcc-analyze/3\"" json);
  Alcotest.(check bool) "kind project" true
    (contains "\"kind\": \"project\"" json)

let suites =
  [
    ( "modan.frontend",
      [
        Alcotest.test_case "import/export round-trip" `Quick
          test_frontend_roundtrip;
        Alcotest.test_case "interface hygiene" `Quick test_frontend_hygiene;
      ] );
    ( "modan.summary",
      [
        Alcotest.test_case "summary shape" `Quick test_summary_shape;
        Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
        Alcotest.test_case "artifact rejects garbage" `Quick
          test_artifact_rejects_garbage;
        Alcotest.test_case "compose from artifacts" `Quick
          test_compose_from_artifacts;
        Alcotest.test_case "key invalidation" `Quick test_key_invalidation;
      ] );
    ( "modan.compose",
      [
        Alcotest.test_case "edge pins" `Quick test_compose_pins;
        Alcotest.test_case "W010 absent provider" `Quick
          test_w010_absent_provider;
        Alcotest.test_case "W010 not exported" `Quick test_w010_not_exported;
        Alcotest.test_case "W010 signature mismatch" `Quick
          test_w010_signature_mismatch;
        Alcotest.test_case "W011 shared global name" `Quick
          test_w011_shared_global_name;
        Alcotest.test_case "W012 dead export" `Quick test_w012_dead_export;
        Alcotest.test_case "generated projects lint" `Quick
          test_generated_projects_lint;
        QCheck_alcotest.to_alcotest prop_composed_superset;
      ] );
    ( "modan.sched",
      [
        Alcotest.test_case "plan invariants" `Quick test_link_plan_invariants;
        Alcotest.test_case "race-free project schedule" `Quick
          test_project_schedule_race_free;
        Alcotest.test_case "outputs render" `Quick test_outputs_render;
      ] );
  ]
