let () =
  Alcotest.run "warpcc"
    (Test_w2.suites @ Test_inline.suites @ Test_ir.suites @ Test_ifconv.suites
    @ Test_irverify.suites @ Test_warp.suites @ Test_netsim.suites
    @ Test_driver.suites @ Test_parallel.suites @ Test_faults.suites
    @ Test_sched.suites @ Test_spec.suites @ Test_depan.suites
    @ Test_absint.suites @ Test_fuzz.suites @ Test_stats.suites
    @ Test_trace.suites @ Test_critpath.suites @ Test_cache.suites
    @ Test_modan.suites @ Test_lintfix.suites)
