(* IR verifier tests: the shipped example programs must verify clean
   through every optimization level with [~verify_each:true], and
   hand-built invariant violations must each be caught and attributed
   to the pass after which they were detected. *)

open Midend

let load_module path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let m = W2.Parser.module_of_string src in
  W2.Semcheck.check_module_exn m;
  m

let example_files () =
  (* [dune runtest] runs in _build/default/test (examples are a sibling
     via the dune deps); [dune exec] runs from the project root. *)
  let dir =
    List.find Sys.file_exists
      [ Filename.concat ".." "examples"; "examples" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".w2")
  |> List.sort compare
  |> List.map (Filename.concat dir)

(* --- clean programs stay clean at every level --- *)

let test_examples_verify () =
  let files = example_files () in
  Alcotest.(check bool) "found example programs" true (List.length files >= 3);
  List.iter
    (fun path ->
      let m = load_module path in
      List.iter
        (fun level ->
          (* Fresh lowering per level: optimization is in-place. *)
          List.iter
            (fun sec ->
              ignore (Opt.optimize_section ~level ~verify_each:true sec);
              match Irverify.check_section sec with
              | [] -> ()
              | vs ->
                Alcotest.failf "%s at -O%d: %s" path level
                  (Irverify.violation_to_string (List.hd vs)))
            (Lower.lower_module m))
        [ 0; 1; 2; 3 ])
    files

let test_generated_benchmarks_verify () =
  List.iter
    (fun size ->
      let m = W2.Gen.module_of_function (W2.Gen.sized_function ~name:"b" size) in
      W2.Semcheck.check_module_exn m;
      List.iter
        (fun sec ->
          ignore (Opt.optimize_section ~level:3 ~verify_each:true sec);
          Alcotest.(check int) "no violations" 0
            (List.length (Irverify.check_section sec)))
        (Lower.lower_module m))
    [ W2.Gen.Small; W2.Gen.Medium; W2.Gen.Large ]

(* --- seeded violations --- *)

let block instrs term = { Ir.instrs; term }

let mk_func ?(name = "broken") ?(params = []) ?(arrays = []) ?ret_ty ~reg_ty
    blocks =
  {
    Ir.name;
    params;
    arrays;
    blocks = Array.of_list blocks;
    reg_ty = Array.of_list reg_ty;
    ret_ty;
  }

(* Running the broken function through the instrumented pipeline must
   raise, and the violation must name the pass after which the check
   failed — for seeded input IR, the initial "lower" checkpoint. *)
let expect_caught ~substring f =
  match Opt.optimize ~level:2 ~verify_each:true f with
  | _ -> Alcotest.failf "expected Irverify.Invalid (%s)" substring
  | exception Irverify.Invalid (v :: _) ->
    Alcotest.(check (option string)) "attributed to a pass" (Some "lower")
      v.Irverify.vi_pass;
    let msg = Irverify.violation_to_string v in
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg substring)
      true (contains msg substring)
  | exception Irverify.Invalid [] -> Alcotest.fail "empty violation list"

let test_branch_target_out_of_range () =
  expect_caught ~substring:"out of range"
    (mk_func ~reg_ty:[]
       [ block [] (Ir.Branch (Ir.Imm_int 1, 0, 7)); ])

let test_uninitialized_use () =
  expect_caught ~substring:"possibly-uninitialized"
    (mk_func ~reg_ty:[ Ir.Int; Ir.Int ]
       [ block [ Ir.Mov (1, Ir.Reg 0) ] (Ir.Ret None) ])

let test_type_mismatched_operand () =
  (* A float immediate fed to an integer add. *)
  expect_caught ~substring:"class float"
    (mk_func ~reg_ty:[ Ir.Int ]
       [ block [ Ir.Bin (Ir.Iadd, 0, Ir.Imm_float 1.0, Ir.Imm_int 2) ] (Ir.Ret None) ])

let test_undeclared_array () =
  expect_caught ~substring:"undeclared array"
    (mk_func ~reg_ty:[ Ir.Int ]
       [ block [ Ir.Load (0, "a", Ir.Imm_int 0) ] (Ir.Ret None) ])

let test_register_out_of_range () =
  expect_caught ~substring:"outside reg_ty"
    (mk_func ~reg_ty:[ Ir.Int ]
       [ block [ Ir.Mov (5, Ir.Imm_int 0) ] (Ir.Ret None) ])

let test_constant_index_out_of_bounds () =
  expect_caught ~substring:"out of bounds"
    (mk_func ~reg_ty:[ Ir.Int ] ~arrays:[ ("a", 4, Ir.Int) ]
       [ block [ Ir.Load (0, "a", Ir.Imm_int 9) ] (Ir.Ret None) ])

let test_empty_block_array () =
  match Irverify.check_func (mk_func ~reg_ty:[] []) with
  | [ v ] ->
    Alcotest.(check int) "function-level" (-1) v.Irverify.vi_block
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* The if-conversion identity arm [d := sel c ? v : d] merely keeps the
   old value; it must not count as a use of [d]. *)
let test_sel_identity_arm_not_a_use () =
  let f =
    mk_func ~reg_ty:[ Ir.Int; Ir.Int ]
      [
        block
          [ Ir.Mov (1, Ir.Imm_int 1); Ir.Sel (0, Ir.Reg 1, Ir.Imm_int 5, Ir.Reg 0) ]
          (Ir.Ret None);
      ]
  in
  Alcotest.(check int) "no violations" 0 (List.length (Irverify.check_func f))

(* --- cross-function call agreement --- *)

let section_of funcs = { Ir.sec_name = "s"; cells = 1; funcs }

let callee =
  mk_func ~name:"callee"
    ~params:[ ("x", Ir.Int, 0) ]
    ~ret_ty:Ir.Int ~reg_ty:[ Ir.Int ]
    [ block [] (Ir.Ret (Some (Ir.Reg 0))) ]

let test_call_unresolved () =
  let caller =
    mk_func ~name:"caller" ~reg_ty:[ Ir.Int ]
      [ block [ Ir.Call (Some 0, "nowhere", []) ] (Ir.Ret None) ]
  in
  match Irverify.check_calls (section_of [ caller; callee ]) with
  | [ v ] ->
    Alcotest.(check bool) "names the callee" true
      (String.length v.Irverify.vi_msg > 0)
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_call_arity_mismatch () =
  let caller =
    mk_func ~name:"caller" ~reg_ty:[ Ir.Int ]
      [
        block
          [ Ir.Call (Some 0, "callee", [ Ir.Imm_int 1; Ir.Imm_int 2 ]) ]
          (Ir.Ret None);
      ]
  in
  Alcotest.(check int) "one violation" 1
    (List.length (Irverify.check_calls (section_of [ caller; callee ])))

let test_call_clean () =
  let caller =
    mk_func ~name:"caller" ~reg_ty:[ Ir.Int ]
      [ block [ Ir.Call (Some 0, "callee", [ Ir.Imm_int 1 ]) ] (Ir.Ret None) ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Irverify.check_calls (section_of [ caller; callee ])))

let suites =
  [
    ( "irverify",
      [
        Alcotest.test_case "examples verify at O0-O3" `Quick test_examples_verify;
        Alcotest.test_case "generated benchmarks verify" `Quick
          test_generated_benchmarks_verify;
        Alcotest.test_case "branch target out of range" `Quick
          test_branch_target_out_of_range;
        Alcotest.test_case "uninitialized use" `Quick test_uninitialized_use;
        Alcotest.test_case "type-mismatched operand" `Quick
          test_type_mismatched_operand;
        Alcotest.test_case "undeclared array" `Quick test_undeclared_array;
        Alcotest.test_case "register out of range" `Quick
          test_register_out_of_range;
        Alcotest.test_case "constant index bounds" `Quick
          test_constant_index_out_of_bounds;
        Alcotest.test_case "empty block array" `Quick test_empty_block_array;
        Alcotest.test_case "sel identity arm" `Quick
          test_sel_identity_arm_not_a_use;
        Alcotest.test_case "call unresolved" `Quick test_call_unresolved;
        Alcotest.test_case "call arity" `Quick test_call_arity_mismatch;
        Alcotest.test_case "call clean" `Quick test_call_clean;
      ] );
  ]
