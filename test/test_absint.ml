(* The abstract-interpretation refinement (Absint) and its integration
   into Depan, the linter, the compiler driver and the scheduler.

   Static guarantees: the interval/region lattice operations are pinned
   (join hulls, widening jumps moved bounds to infinity, unions
   normalize and respect the max-intervals knob), refutations are
   pinned on the three refinement programs (regions on the partitioned
   lattice, protocol on the dead-channel program, a no-op witness on
   the helper program), W008 downgrades to a note exactly when every
   access pair is element-disjoint, and --no-absint reproduces the base
   analyzer's edges.

   Dynamic guarantees: every pruned pair commutes in the reference
   interpreter (QCheck over worker/segment shapes), DAG-gated dispatch
   over the pruned DAG keeps the exactly-once contract under the fault
   chaos matrix with the trace-backed race oracle armed, and the static
   cost domain ranks tasks the same way the measured signal does. *)

open Parallel_cc
module A = Analysis.Absint
module D = Analysis.Depan

let cost = Driver.Cost.default
let first_section t = List.hd t.D.dp_sections

let itv =
  Alcotest.testable
    (fun fmt i -> Format.pp_print_string fmt (A.itv_to_string i))
    A.itv_equal

let region =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (A.region_to_string r))
    A.region_equal

(* --- interval lattice, pinned --- *)

let test_intervals () =
  Alcotest.check itv "join is the hull"
    { A.lo = Some 0; hi = Some 7 }
    (A.itv_join (A.itv_const 0) (A.itv_const 7));
  Alcotest.check itv "join keeps infinities"
    { A.lo = None; hi = Some 7 }
    (A.itv_join { A.lo = None; hi = Some 3 } (A.itv_const 7));
  Alcotest.check itv "widening is identity on stable bounds"
    (A.itv_const 4)
    (A.itv_widen (A.itv_const 4) (A.itv_const 4));
  Alcotest.check itv "a growing upper bound widens to +inf"
    { A.lo = Some 0; hi = None }
    (A.itv_widen { A.lo = Some 0; hi = Some 4 } { A.lo = Some 0; hi = Some 5 });
  Alcotest.check itv "a shrinking lower bound widens to -inf"
    { A.lo = None; hi = Some 4 }
    (A.itv_widen { A.lo = Some 1; hi = Some 4 } { A.lo = Some 0; hi = Some 4 });
  Alcotest.(check string)
    "rendering" "[1,+inf)"
    (A.itv_to_string { A.lo = Some 1; hi = None })

let test_regions () =
  let s lo hi = A.Slices [ { A.lo = Some lo; hi = Some hi } ] in
  Alcotest.check region "adjacent slices coalesce" (s 0 7)
    (A.region_union ~max_intervals:8 (s 0 3) (s 4 7));
  Alcotest.check region "disjoint slices stay separate"
    (A.Slices [ { A.lo = Some 0; hi = Some 1 }; { A.lo = Some 5; hi = Some 6 } ])
    (A.region_union ~max_intervals:8 (s 0 1) (s 5 6));
  (* The precision knob: more than max_intervals slices widen to All. *)
  let many =
    List.fold_left
      (fun acc k -> A.region_union ~max_intervals:2 acc (s (4 * k) ((4 * k) + 1)))
      A.Empty [ 0; 1; 2 ]
  in
  Alcotest.check region "over-budget unions widen to All" A.All many;
  Alcotest.(check bool) "disjoint slices" true (A.regions_disjoint (s 0 3) (s 4 7));
  Alcotest.(check bool) "overlap detected" false (A.regions_disjoint (s 0 4) (s 4 7));
  Alcotest.(check bool) "All overlaps everything" false (A.regions_disjoint A.All (s 9 9));
  Alcotest.(check bool) "Empty is disjoint from All" true (A.regions_disjoint A.Empty A.All)

let test_cost_units () =
  Alcotest.(check int) "midpoint" 15 (A.cost_units { A.lo = Some 10; hi = Some 20 });
  Alcotest.(check int) "unbounded loops charge 4x the floor" 20
    (A.cost_units { A.lo = Some 5; hi = None });
  Alcotest.(check int) "never below one unit" 1 (A.cost_units A.itv_zero)

(* --- widening keeps loop-carried writes conservative --- *)

(* A parameter-bound loop has an unknown trip range, so the write
   region must widen past any literal slice instead of narrowing to
   something refutable: the conflict with a literal-slice writer has
   to survive. *)
let widen_src =
  {|module widen
  section s cells 2
  var a : array[16] of float;
  function fixed(x: float) : float
    var i : int;
  begin
    for i := 0 to 3 do
      a[i] := x;
    end;
    return x;
  end
  function roaming(n: int) : float
    var i : int;
  begin
    for i := 0 to n do
      a[i] := 1.0;
    end;
    return 0.0;
  end
  end
end|}

let test_widening_blocks_refutation () =
  let m = W2.Parser.module_of_string ~file:"widen.w2" widen_src in
  W2.Semcheck.check_module_exn m;
  let sums = A.analyze_section (List.hd m.W2.Ast.sections) in
  let roam = List.assoc "roaming" sums in
  Alcotest.(check bool)
    "parameter-bound write region is not provably bounded" false
    (A.regions_disjoint (A.write_region roam "a")
       (A.Slices [ { A.lo = Some 4; hi = Some 15 } ]));
  let si = first_section (D.analyze m) in
  Alcotest.(check bool) "the global conflict survives refinement" true
    (List.exists
       (fun (f, g, rs) ->
         (f = "fixed" || g = "fixed")
         && List.mem (D.Global_conflict "a") rs)
       (D.edges_by_name si));
  Alcotest.(check int) "nothing is pruned" 0 (List.length si.D.si_pruned)

(* --- refutations pinned on the refinement programs --- *)

let edge_pairs si =
  List.map (fun (f, g, _) -> (f, g)) (D.edges_by_name si) |> List.sort compare

let pruned_pairs si =
  List.map (fun (f, g, _, _) -> (f, g)) (D.pruned_by_name si)
  |> List.sort_uniq compare

let test_partitioned_prunes () =
  let m = W2.Gen.partitioned_program () in
  W2.Semcheck.check_module_exn m;
  let off = first_section (D.analyze ~absint:false m) in
  let on = first_section (D.analyze m) in
  Alcotest.(check int) "absint off leaves no prune provenance" 0
    (List.length off.D.si_pruned);
  (* Exactly the C(4,2) worker-worker conflicts disappear... *)
  Alcotest.(check int) "six worker pairs pruned" 6 (List.length on.D.si_pruned);
  List.iter
    (fun (f, g, reason, refuter) ->
      Alcotest.(check bool) (f ^ "->" ^ g ^ " is a worker pair") true
        (String.length f >= 7 && String.sub f 0 7 = "worker_"
        && String.length g >= 7 && String.sub g 0 7 = "worker_");
      Alcotest.(check string) "refuted reason" "global_conflict:lattice"
        (D.reason_to_string reason);
      Alcotest.(check string) "refuted by the region domain" "region"
        (D.refuter_to_string refuter))
    (D.pruned_by_name on);
  (* ...and nothing else: kept edges + pruned pairs = the base edges. *)
  Alcotest.(check (list (pair string string)))
    "pruned + kept partitions the base edge set"
    (edge_pairs off)
    (List.sort compare (edge_pairs on @ pruned_pairs on));
  Alcotest.(check bool) "licensed fraction strictly improves" true
    (D.licensed_fraction on > D.licensed_fraction off);
  (* The collector reads the whole lattice, so the array is NOT fully
     element-disjoint — only the worker-worker pairs are.  The W008
     downgrade set must stay empty here (the warning is a true
     positive); the fully partitioned case is pinned separately. *)
  Alcotest.(check (list string))
    "whole-array reader blocks the W008 downgrade" [] on.D.si_disjoint;
  (* The genuine worker -> collect orderings survive. *)
  List.iter
    (fun k ->
      let w = Printf.sprintf "worker_%d" k in
      Alcotest.(check bool) (w ^ " -> collect kept") true
        (List.mem (w, "collect") (edge_pairs on)))
    [ 0; 1; 2; 3 ]

let test_histogram_prunes () =
  let m = W2.Gen.histogram_program () in
  W2.Semcheck.check_module_exn m;
  let on = first_section (D.analyze m) in
  Alcotest.(check int) "six counter pairs pruned" 6 (List.length on.D.si_pruned);
  (* The helper coupling is real (inline/signature) and untouchable. *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "smooth -> count_%d kept" d)
        true
        (List.mem ("smooth", Printf.sprintf "count_%d" d) (edge_pairs on)))
    [ 0; 1; 2; 3 ];
  let smooth =
    Array.to_list on.D.si_funcs
    |> List.find (fun fi -> fi.D.fi_name = "smooth")
  in
  Alcotest.(check (option string))
    "the shared helper is judged pure" (Some "pure")
    (Option.map A.purity_to_string smooth.D.fi_purity);
  let counter =
    Array.to_list on.D.si_funcs
    |> List.find (fun fi -> fi.D.fi_name = "count_0")
  in
  Alcotest.(check (option string))
    "counters write their bin" (Some "effectful")
    (Option.map A.purity_to_string counter.D.fi_purity)

let test_deadchan_prunes () =
  let m = W2.Gen.deadchan_program () in
  W2.Semcheck.check_module_exn m;
  let sums = A.analyze_section (List.hd m.W2.Ast.sections) in
  Alcotest.(check bool) "probe is provably silent on X" true
    (A.chan_silent (List.assoc "probe" sums) W2.Ast.Chan_x);
  Alcotest.(check bool) "pump really sends on X" false
    (A.chan_silent (List.assoc "pump" sums) W2.Ast.Chan_x);
  let on = first_section (D.analyze m) in
  List.iter
    (fun (f, g, _, refuter) ->
      Alcotest.(check bool) (f ^ "->" ^ g ^ " involves the dead probe") true
        (f = "probe" || g = "probe");
      Alcotest.(check string) "refuted by the protocol domain" "protocol"
        (D.refuter_to_string refuter))
    (D.pruned_by_name on);
  Alcotest.(check bool) "at least one probe pairing pruned" true
    (on.D.si_pruned <> []);
  Alcotest.(check bool) "the live pump/drain pairing survives" true
    (List.exists
       (fun (f, g, rs) ->
         ((f = "pump" && g = "drain") || (f = "drain" && g = "pump"))
         && List.mem (D.Channel_pair W2.Ast.Chan_x) rs)
       (D.edges_by_name on))

let test_helper_witness () =
  (* Inline/signature edges are genuine compile-order constraints; the
     refinement must leave the helper program bit-identical. *)
  let m = W2.Gen.helper_program ~drivers:4 () in
  W2.Semcheck.check_module_exn m;
  let off = first_section (D.analyze ~absint:false m) in
  let on = first_section (D.analyze m) in
  Alcotest.(check int) "nothing pruned" 0 (List.length on.D.si_pruned);
  Alcotest.(check (list (pair string string)))
    "edges unchanged" (edge_pairs off) (edge_pairs on);
  Alcotest.(check bool) "licensed fraction unchanged" true
    (D.licensed_fraction on = D.licensed_fraction off)

(* Every access to [a] — writes and read-backs alike — stays inside
   the owner's slice, and the entry function only combines returned
   values, so the shared-global coupling is provably harmless. *)
let disjoint_src =
  {|module disjoint
  section s cells 2
  var a : array[8] of float;
  function total(seed: int) : float
    var acc : float;
  begin
    acc := low(seed);
    acc := acc + high(seed + 1);
    return acc;
  end
  function low(seed: int) : float
    var i : int;
    var acc : float;
  begin
    for i := 0 to 3 do
      a[i] := float(seed) * 0.5;
    end;
    acc := 0.0;
    for i := 0 to 3 do
      acc := acc + a[i];
    end;
    return acc;
  end
  function high(seed: int) : float
    var i : int;
    var acc : float;
  begin
    for i := 4 to 7 do
      a[i] := float(seed) * 0.25;
    end;
    acc := 0.0;
    for i := 4 to 7 do
      acc := acc + a[i];
    end;
    return acc;
  end
  end
end|}

let w008_severities ~absint m =
  D.lint (D.analyze ~absint m)
  |> List.filter (fun d -> d.W2.Diag.d_code = "W008")
  |> List.map (fun d -> d.W2.Diag.d_severity)

let test_w008_downgrade () =
  let m = W2.Parser.module_of_string ~file:"disjoint.w2" disjoint_src in
  W2.Semcheck.check_module_exn m;
  let si = first_section (D.analyze m) in
  Alcotest.(check (list string))
    "fully partitioned array is certified element-disjoint" [ "a" ]
    si.D.si_disjoint;
  Alcotest.(check int) "the low/high conflict is pruned" 1
    (List.length si.D.si_pruned);
  Alcotest.(check bool) "base analysis warns on the shared array" true
    (List.mem W2.Diag.Warning (w008_severities ~absint:false m));
  let refined = w008_severities ~absint:true m in
  Alcotest.(check bool) "refined analysis downgrades W008 to a note" true
    (refined <> [] && List.for_all (( = ) W2.Diag.Note) refined);
  (* The downgrade must not over-reach: the generator's collector reads
     the whole lattice, so there the warning is a true positive and
     survives refinement at full severity. *)
  let shared = W2.Gen.partitioned_program () in
  W2.Semcheck.check_module_exn shared;
  Alcotest.(check bool) "whole-array reader keeps the warning" true
    (List.mem W2.Diag.Warning (w008_severities ~absint:true shared))

(* --- static cost domain vs the measured cost signal --- *)

let task_names_by costf (plan : Plan.t) =
  List.concat_map snd plan.Plan.tasks_per_section
  |> List.map (fun (t : Plan.task) ->
         ((List.hd t.Plan.t_funcs).Driver.Compile.fw_name, costf t))

let test_static_cost_ranks () =
  let mw = Driver.Compile.compile_module (W2.Gen.partitioned_program ()) in
  List.iter
    (fun fw ->
      Alcotest.(check bool)
        (fw.Driver.Compile.fw_name ^ " carries static units")
        true
        (fw.Driver.Compile.fw_static_units <> None))
    (Driver.Compile.all_funcs mw);
  let plan = Plan.one_per_station mw in
  let static = task_names_by (Sched.task_cost ~static:true cost) plan in
  let measured = task_names_by (Sched.task_cost cost) plan in
  let argmax costs =
    List.fold_left (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
      (List.hd costs) (List.tl costs)
    |> fst
  in
  (* The collector visits every worker and the whole lattice: both
     signals must rank it heaviest. *)
  Alcotest.(check string) "static picks collect" "collect" (argmax static);
  Alcotest.(check string) "measured agrees" "collect" (argmax measured);
  let workers = List.filter (fun (n, _) -> n <> "collect") static in
  List.iter
    (fun (n, c) ->
      Alcotest.(check (float 0.0)) (n ^ " ties its siblings statically")
        (snd (List.hd workers)) c)
    workers;
  (* Turning the refinement off leaves no static signal behind. *)
  let mw_off = Driver.Compile.compile_module ~absint:false (W2.Gen.partitioned_program ()) in
  List.iter
    (fun fw ->
      Alcotest.(check bool)
        (fw.Driver.Compile.fw_name ^ " has no static units with absint off")
        true
        (fw.Driver.Compile.fw_static_units = None))
    (Driver.Compile.all_funcs mw_off)

(* --- pruned pairs are dynamically safe --- *)

(* Every pair the refinement disconnects must commute in the reference
   interpreter: same per-function results, same channel output
   streams, in either order. *)
let test_pruned_pairs_commute () =
  QCheck.Test.make ~count:30 ~name:"pruned pair => interp order-insensitive"
    QCheck.(pair (int_range 2 5) (int_range 1 4))
    (fun (workers, seg) ->
      let m = W2.Gen.partitioned_program ~workers ~seg () in
      W2.Semcheck.check_module_exn m;
      let si = first_section (D.analyze m) in
      let expected = workers * (workers - 1) / 2 in
      if List.length si.D.si_pruned <> expected then false
      else begin
        let sec = List.hd m.W2.Ast.sections in
        let args = [ W2.Interp.Vint 5; W2.Interp.Vint 3 ] in
        let play order =
          let channels, outputs =
            W2.Interp.queue_channels ~input_x:[] ~input_y:[]
          in
          let results =
            List.map
              (fun name ->
                (name, W2.Interp.run_function ~channels sec ~name ~args))
              order
          in
          (List.sort compare results, outputs ())
        in
        List.for_all
          (fun (f, g, _, _) ->
            let i = ref (-1) and j = ref (-1) in
            Array.iteri
              (fun k fi ->
                if fi.D.fi_name = f then i := k;
                if fi.D.fi_name = g then j := k)
              si.D.si_funcs;
            D.independent si !i !j
            && play [ f; g ] = play [ g; f ])
          (D.pruned_by_name si)
      end)

(* --- chaos over the pruned DAG, race oracle armed --- *)

let dag_cfg policy =
  { Config.default with Config.stations = 5; noise_seed = 0; sched_policy = policy }

let run_dag ~policy ?(budget = Config.default.Config.retry_budget) mw faults =
  (* A fresh trace per run arms the race oracle inside Parrun.run: if a
     pruned edge were real, its out-of-order dispatch would fail here. *)
  let tr = Trace.create () in
  Parrun.run
    { (dag_cfg policy) with Config.faults; retry_budget = budget; trace = tr }
    mw (Plan.one_per_station mw)

let scheduled_heads ?(static = false) ~policy mw =
  let cfg = dag_cfg policy in
  let scheduled =
    Sched.schedule ~static ~policy ~cost ~threshold:cfg.Config.batch_threshold
      ~stations:cfg.Config.stations (Plan.one_per_station mw)
  in
  List.concat_map
    (fun (_, tasks) ->
      List.map
        (fun (t : Plan.task) -> (List.hd t.Plan.t_funcs).Driver.Compile.fw_name)
        tasks)
    scheduled.Plan.tasks_per_section
  |> List.sort compare

let completed_heads (o : Parrun.outcome) =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n >= 3 && String.sub name (n - 3) 3 = "#p3" then None else Some name)
    o.Parrun.station_of_task
  |> List.sort compare

let test_chaos_pruned_dag () =
  let mw = Driver.Compile.compile_module (W2.Gen.partitioned_program ()) in
  let si = first_section mw.Driver.Compile.mw_analysis in
  Alcotest.(check int) "the compiled plan rides the pruned DAG" 6
    (List.length si.D.si_pruned);
  List.iter
    (fun policy ->
      let expected = scheduled_heads ~policy mw in
      let ff = (run_dag ~policy mw Netsim.Fault.none).Parrun.run.Timings.elapsed in
      List.iter
        (fun (kind, event) ->
          let label = Sched.policy_name policy ^ " under " ^ kind in
          let o = run_dag ~policy mw { Netsim.Fault.events = [ event ] } in
          Alcotest.(check bool) (label ^ ": terminates") true
            (o.Parrun.run.Timings.elapsed > 0.0);
          Alcotest.(check (list string))
            (label ^ ": every dispatch unit completed exactly once")
            expected (completed_heads o))
        [
          ("crash", Netsim.Fault.Crash { station = 2; at = 0.3 *. ff });
          ("reclaim", Netsim.Fault.Reclaim { station = 2; at = 0.25 *. ff });
          ( "slowdown",
            Netsim.Fault.Slowdown
              { station = 3; from_ = 0.1 *. ff; until = 0.6 *. ff; factor = 3.0 }
          );
        ])
    Sched.dag_policies

let test_static_schedule_runs () =
  (* --static-cost end to end: the dispatcher must complete exactly the
     units of the statically ranked schedule (whose batching may differ
     from the measured one), race-free under the armed oracle. *)
  let mw = Driver.Compile.compile_module (W2.Gen.partitioned_program ()) in
  let cfg = { (dag_cfg Sched.Dag_lpt) with Config.static_cost = true } in
  let tr = Trace.create () in
  let o = Parrun.run { cfg with Config.trace = tr } mw (Plan.one_per_station mw) in
  Alcotest.(check bool) "terminates" true (o.Parrun.run.Timings.elapsed > 0.0);
  Alcotest.(check (list string))
    "static-cost dag+lpt completes every unit exactly once"
    (scheduled_heads ~static:true ~policy:Sched.Dag_lpt mw)
    (completed_heads o)

let suites =
  [
    ( "absint.domains",
      [
        Alcotest.test_case "interval lattice pinned" `Quick test_intervals;
        Alcotest.test_case "region lattice pinned" `Quick test_regions;
        Alcotest.test_case "cost scalarization pinned" `Quick test_cost_units;
        Alcotest.test_case "widening blocks refutation" `Quick
          test_widening_blocks_refutation;
      ] );
    ( "absint.prune",
      [
        Alcotest.test_case "partitioned lattice prunes" `Quick
          test_partitioned_prunes;
        Alcotest.test_case "histogram prunes, helper kept" `Quick
          test_histogram_prunes;
        Alcotest.test_case "dead channel prunes" `Quick test_deadchan_prunes;
        Alcotest.test_case "helper program untouched" `Quick test_helper_witness;
        Alcotest.test_case "W008 downgrades to note" `Quick test_w008_downgrade;
        Alcotest.test_case "static cost ranks like measured" `Quick
          test_static_cost_ranks;
      ] );
    ( "absint.dynamic",
      [
        QCheck_alcotest.to_alcotest (test_pruned_pairs_commute ());
        Alcotest.test_case "chaos over the pruned DAG" `Slow
          test_chaos_pruned_dag;
        Alcotest.test_case "static-cost schedule runs race-free" `Quick
          test_static_schedule_runs;
      ] );
  ]
