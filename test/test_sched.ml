(* The cost-model scheduler (Sched) and its integration into Parrun.

   Three layers of guarantees:
   - Sched is a pure plan-to-plan function: whatever the policy,
     threshold or pool, the scheduled plan compiles exactly the same
     functions in the same sections (a per-section permutation under
     LPT, a partition into fewer dispatch units under batching).
   - FCFS is the identity — physically, so the DES event schedule and
     the resulting timings stay bit-identical to the goldens recorded
     before the scheduler existed, with and without fault injection.
   - The new policies only ever help on oversubscribed pools, and the
     fault-tolerance contract (terminate, every function compiled
     exactly once) survives batching under the whole chaos matrix. *)

open Parallel_cc

let cost = Driver.Cost.default
let threshold = Config.default.Config.batch_threshold

let tiny n = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:n ()
let small n = Experiment.s_program_work ~size:W2.Gen.Small ~count:n ()
let large n = Experiment.s_program_work ~size:W2.Gen.Large ~count:n ()
let user () = Experiment.user_program_work ()

(* Per-section multiset of function names — the invariant every policy
   must preserve. *)
let section_funcs (plan : Plan.t) =
  List.map
    (fun (s, tasks) ->
      ( s,
        List.concat_map
          (fun (t : Plan.task) ->
            List.map (fun fw -> fw.Driver.Compile.fw_name) t.Plan.t_funcs)
          tasks
        |> List.sort compare ))
    plan.Plan.tasks_per_section

let plans () =
  [
    ("tiny8 one-per", Plan.one_per_station (tiny 8));
    ("small8 one-per", Plan.one_per_station (small 8));
    ("user one-per", Plan.one_per_station (user ()));
    ("user grouped 4", Plan.grouped (user ()) ~processors:4);
    ("mixed grouped 3", Plan.grouped (large 8) ~processors:3);
  ]

(* --- the policy type --- *)

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Sched.policy_name p ^ " round-trips")
        true
        (Sched.policy_of_string (Sched.policy_name p) = Some p))
    Sched.all;
  Alcotest.(check bool) "lpt-batch alias" true
    (Sched.policy_of_string "lpt-batch" = Some Sched.Lpt_batch);
  Alcotest.(check bool) "unknown rejected" true
    (Sched.policy_of_string "sjf" = None)

(* --- purity: same functions, same sections, whatever the policy --- *)

let test_fcfs_is_physical_identity () =
  List.iter
    (fun (name, plan) ->
      Alcotest.(check bool)
        (name ^ ": fcfs returns the plan unchanged")
        true
        (Sched.schedule ~policy:Sched.Fcfs ~cost ~threshold ~stations:5 plan
        == plan))
    (plans ())

let test_schedule_preserves_functions () =
  List.iter
    (fun (name, plan) ->
      let reference = section_funcs plan in
      List.iter
        (fun policy ->
          List.iter
            (fun threshold ->
              List.iter
                (fun stations ->
                  let scheduled =
                    Sched.schedule ~policy ~cost ~threshold ~stations plan
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "%s @ %s t=%.0f s=%d: same functions per section" name
                       (Sched.policy_name policy) threshold stations)
                    true
                    (section_funcs scheduled = reference))
                [ 2; 3; 5; 9 ])
            [ 0.0; 30.0; 60.0; 1000.0; 1e9 ])
        Sched.all)
    (plans ())

let test_schedule_preserves_functions_random () =
  QCheck.Test.make ~count:100 ~name:"random threshold/pool preserve functions"
    QCheck.(
      triple (float_bound_inclusive 2000.0) (int_range 2 12) (int_range 0 2))
    (fun (threshold, stations, p) ->
      let policy = List.nth Sched.all p in
      let plan = Plan.one_per_station (tiny 8) in
      let scheduled = Sched.schedule ~policy ~cost ~threshold ~stations plan in
      section_funcs scheduled = section_funcs plan)

(* --- LPT ordering --- *)

let test_lpt_descending () =
  (* The user program mixes function sizes; grouping onto 4 masters
     leaves multi-task sections to reorder. *)
  let plan = Plan.one_per_station (large 8) in
  let scheduled =
    Sched.schedule ~policy:Sched.Lpt ~cost ~threshold ~stations:5 plan
  in
  List.iter
    (fun (s, tasks) ->
      let costs =
        List.map
          (fun (t : Plan.task) ->
            Driver.Cost.task_phase23_seconds cost t.Plan.t_funcs)
          tasks
      in
      Alcotest.(check bool)
        (s ^ ": costs descending")
        true
        (costs = List.sort (fun a b -> compare b a) costs))
    scheduled.Plan.tasks_per_section

(* --- batching shape --- *)

let test_batching_merges_tiny () =
  let plan = Plan.one_per_station (tiny 8) in
  (* 8 tiny tasks of ~9.7 estimated seconds against a 60 s threshold:
     FFD packs 6 + 2 into two dispatch units. *)
  let scheduled =
    Sched.schedule ~policy:Sched.Lpt_batch ~cost ~threshold ~stations:5 plan
  in
  Alcotest.(check int) "8 tiny tasks pack into 2 units" 2
    (Plan.task_count scheduled);
  Alcotest.(check bool) "same functions" true
    (section_funcs scheduled = section_funcs plan);
  (* A threshold below the task cost batches nothing. *)
  let untouched =
    Sched.schedule ~policy:Sched.Lpt_batch ~cost ~threshold:1.0 ~stations:5 plan
  in
  Alcotest.(check int) "sub-cost threshold batches nothing" 8
    (Plan.task_count untouched);
  (* The bin budget is the pool size: an infinite threshold on a
     2-station pool still yields one unit per station at most. *)
  let capped =
    Sched.schedule ~policy:Sched.Lpt_batch ~cost ~threshold:1e9 ~stations:3 plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "units %d <= pool 2" (Plan.task_count capped))
    true
    (Plan.task_count capped <= 2)

let test_batching_keeps_sections () =
  let plan = Plan.one_per_station (user ()) in
  let scheduled =
    Sched.schedule ~policy:Sched.Lpt_batch ~cost ~threshold:1e9 ~stations:3 plan
  in
  List.iter
    (fun (s, tasks) ->
      List.iter
        (fun (t : Plan.task) ->
          Alcotest.(check string) "task stays in its section" s t.Plan.t_section)
        tasks)
    scheduled.Plan.tasks_per_section

(* --- FCFS timings are bit-identical to the pre-scheduler goldens --- *)

(* Recorded on main before Sched existed: S_4 f_tiny, one function
   master per station (pool of 4 + master), noise seed 0. *)
let golden_ff_elapsed = 84.144033268500777
let golden_faulty_elapsed = 1690.5240572559981
let golden_faulty_retries = 8
let golden_faulty_wasted = 299.05740315000065

let fcfs_cfg = { Config.default with Config.stations = 5; noise_seed = 0 }

let test_fcfs_golden_fault_free () =
  let mw = tiny 4 in
  let r = (Parrun.run fcfs_cfg mw (Plan.one_per_station mw)).Parrun.run in
  Alcotest.(check (float 0.0)) "elapsed bit-identical" golden_ff_elapsed
    r.Timings.elapsed;
  Alcotest.(check (float 0.0)) "no wasted cpu" 0.0 r.Timings.wasted_cpu;
  Alcotest.(check int) "one dispatch unit per task" 4 r.Timings.dispatch_units

let test_fcfs_golden_faulted () =
  let mw = tiny 4 in
  let plan = Plan.one_per_station mw in
  let faults =
    Netsim.Fault.random ~seed:99 ~stations:5 ~rate:1.0
      ~horizon:golden_ff_elapsed ()
  in
  let r = (Parrun.run { fcfs_cfg with Config.faults } mw plan).Parrun.run in
  Alcotest.(check (float 0.0)) "faulted elapsed bit-identical"
    golden_faulty_elapsed r.Timings.elapsed;
  Alcotest.(check int) "retries" golden_faulty_retries r.Timings.retries;
  Alcotest.(check (float 0.0)) "wasted cpu" golden_faulty_wasted
    r.Timings.wasted_cpu

(* --- the policies only help on oversubscribed pools --- *)

let elapsed ~policy ~pool mw =
  let plan = Plan.one_per_station mw in
  let cfg =
    {
      Config.default with
      Config.stations = pool + 1;
      noise_seed = 3;
      sched_policy = policy;
    }
  in
  (Parrun.run cfg mw plan).Parrun.run.Timings.elapsed

let test_batching_beats_fcfs_on_tiny () =
  List.iter
    (fun (n, pool) ->
      let fcfs = elapsed ~policy:Sched.Fcfs ~pool (tiny n) in
      let batched = elapsed ~policy:Sched.Lpt_batch ~pool (tiny n) in
      Alcotest.(check bool)
        (Printf.sprintf "tiny%d pool %d: lpt+batch %.1f < fcfs %.1f" n pool
           batched fcfs)
        true (batched < fcfs))
    [ (4, 2); (8, 2); (8, 4); (16, 4) ]

let test_policies_no_worse_on_large () =
  let fcfs = elapsed ~policy:Sched.Fcfs ~pool:4 (large 8) in
  let lpt = elapsed ~policy:Sched.Lpt ~pool:4 (large 8) in
  let batched = elapsed ~policy:Sched.Lpt_batch ~pool:4 (large 8) in
  Alcotest.(check bool)
    (Printf.sprintf "large8 pool 4: lpt %.1f <= fcfs %.1f" lpt fcfs)
    true (lpt <= fcfs);
  (* Large functions sit far above the threshold: batching is inert and
     lpt+batch degenerates to plain LPT, bit for bit. *)
  Alcotest.(check (float 0.0)) "lpt+batch == lpt above threshold" lpt batched

(* --- fault tolerance survives batching (chaos under lpt+batch) --- *)

let batch_cfg ~fine =
  {
    Config.default with
    Config.stations = 5;
    noise_seed = 0;
    fine_grained = fine;
    sched_policy = Sched.Lpt_batch;
  }

let run_batched ~fine ?(budget = Config.default.Config.retry_budget) mw faults =
  let plan = Plan.one_per_station mw in
  Parrun.run
    { (batch_cfg ~fine) with Config.faults; retry_budget = budget }
    mw plan

(* Under batching the dispatch units are the scheduled plan's tasks, so
   coverage is checked against the heads of that plan (computed with
   the same policy/threshold/pool), not against individual functions. *)
let scheduled_heads ~fine mw =
  let cfg = batch_cfg ~fine in
  let scheduled =
    Sched.schedule ~policy:cfg.Config.sched_policy ~cost
      ~threshold:cfg.Config.batch_threshold ~stations:cfg.Config.stations
      (Plan.one_per_station mw)
  in
  List.concat_map
    (fun (_, tasks) ->
      List.map
        (fun (t : Plan.task) ->
          (List.hd t.Plan.t_funcs).Driver.Compile.fw_name)
        tasks)
    scheduled.Plan.tasks_per_section
  |> List.sort compare

let completed_heads (o : Parrun.outcome) =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n >= 3 && String.sub name (n - 3) 3 = "#p3" then None else Some name)
    o.Parrun.station_of_task
  |> List.sort compare

let test_chaos_matrix_batched () =
  let mw = tiny 8 in
  List.iter
    (fun fine ->
      let ff =
        (run_batched ~fine mw Netsim.Fault.none).Parrun.run.Timings.elapsed
      in
      let expected = scheduled_heads ~fine mw in
      let plans =
        [
          ("crash", Netsim.Fault.Crash { station = 2; at = 0.3 *. ff });
          ("reclaim", Netsim.Fault.Reclaim { station = 2; at = 0.25 *. ff });
          ( "slowdown",
            Netsim.Fault.Slowdown
              { station = 3; from_ = 0.1 *. ff; until = 0.6 *. ff; factor = 3.0 }
          );
          ( "fs-brownout",
            Netsim.Fault.Fs_brownout
              { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 4.0 } );
          ( "ether-degrade",
            Netsim.Fault.Ether_degrade
              { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 3.0 } );
        ]
      in
      List.iter
        (fun (kind, event) ->
          List.iter
            (fun budget ->
              let label =
                Printf.sprintf "batched %s %s budget=%d"
                  (if fine then "fine" else "coarse")
                  kind budget
              in
              let o =
                run_batched ~fine ~budget mw { Netsim.Fault.events = [ event ] }
              in
              Alcotest.(check bool)
                (label ^ ": terminates")
                true
                (o.Parrun.run.Timings.elapsed > 0.0);
              Alcotest.(check (list string))
                (label ^ ": every dispatch unit completed exactly once")
                expected (completed_heads o))
            [ 0; 2 ])
        plans)
    [ false; true ]

let test_random_chaos_batched () =
  let mw = tiny 8 in
  let seed =
    match Sys.getenv_opt "CHAOS_SEED" with
    | Some s -> (
      match int_of_string_opt s with Some n when n <> 0 -> n | _ -> 7)
    | None -> 7
  in
  let ff = (run_batched ~fine:false mw Netsim.Fault.none).Parrun.run.Timings.elapsed in
  let faults =
    Netsim.Fault.random ~seed ~stations:5 ~rate:1.0 ~horizon:(1.5 *. ff) ()
  in
  List.iter
    (fun budget ->
      let o = run_batched ~fine:false ~budget mw faults in
      Alcotest.(check bool)
        (Printf.sprintf "seed=%d budget=%d terminates" seed budget)
        true
        (o.Parrun.run.Timings.elapsed > 0.0);
      Alcotest.(check (list string))
        (Printf.sprintf "seed=%d budget=%d coverage" seed budget)
        (scheduled_heads ~fine:false mw)
        (completed_heads o))
    [ 0; 2 ]

let suites =
  [
    ( "sched.pure",
      [
        Alcotest.test_case "policy names" `Quick test_policy_names;
        Alcotest.test_case "fcfs physical identity" `Quick
          test_fcfs_is_physical_identity;
        Alcotest.test_case "functions preserved" `Quick
          test_schedule_preserves_functions;
        QCheck_alcotest.to_alcotest (test_schedule_preserves_functions_random ());
        Alcotest.test_case "lpt descending" `Quick test_lpt_descending;
        Alcotest.test_case "batching merges tiny" `Quick
          test_batching_merges_tiny;
        Alcotest.test_case "batching keeps sections" `Quick
          test_batching_keeps_sections;
      ] );
    ( "sched.timings",
      [
        Alcotest.test_case "fcfs golden (fault-free)" `Quick
          test_fcfs_golden_fault_free;
        Alcotest.test_case "fcfs golden (faulted)" `Quick
          test_fcfs_golden_faulted;
        Alcotest.test_case "batching beats fcfs on tiny" `Slow
          test_batching_beats_fcfs_on_tiny;
        Alcotest.test_case "no worse on large" `Slow
          test_policies_no_worse_on_large;
      ] );
    ( "sched.chaos",
      [
        Alcotest.test_case "chaos matrix (lpt+batch)" `Slow
          test_chaos_matrix_batched;
        Alcotest.test_case "random chaos (lpt+batch)" `Slow
          test_random_chaos_batched;
      ] );
  ]
