(* The content-addressed compile cache (docs/CACHING.md).

   The guarantees, by layer:
   - Key derivation is deterministic, salted by the optimization
     configuration, and closed over the dependence ancestry: a
     semantics-neutral edit of one function changes exactly the keys of
     its invalidation closure and nothing else.
   - The runners memoize the phase-2/3 artifact: a warm run hits on
     every function and finishes strictly faster, its store bytes are
     identical to the cold run's, and the one-edit run recompiles
     exactly the closure (each such miss flagged as an invalidation).
   - [Config.cache = None] (the default) leaves the event schedule
     untouched, so two disabled runs are bit-identical and carry zero
     counters; [fine_grained] bypasses the cache in both runners.
   - Store population is exactly-once per key, fault plans and
     speculative rollbacks included: a quarantined speculative artifact
     never reaches the store. *)

open Parallel_cc

(* CI salts the chaos fault plans (see .github/workflows/ci.yml). *)
let chaos_seed () =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> int_of_string s
  | None -> 1

let helpers ?edit () =
  Experiment.cache_program_work ~name:"helpers" ?edit (fun () ->
      W2.Gen.helper_program ())

let small8 ?edit () =
  Experiment.cache_program_work ~name:"small8" ?edit (fun () ->
      W2.Gen.s_program ~size:W2.Gen.Small ~count:8 ())

let racy () =
  Experiment.spec_program_work ~absint:true ~name:"racy3" (fun () ->
      W2.Gen.racy_program ~scatters:3 ())

(* (section, name) -> cache key, sorted; every function must carry a
   key when the module went through the phase-1 analysis. *)
let keys_of (mw : Driver.Compile.module_work) =
  List.sort compare
    (List.map
       (fun (fw : Driver.Compile.func_work) ->
         match fw.Driver.Compile.fw_key with
         | Some k -> ((fw.Driver.Compile.fw_section, fw.Driver.Compile.fw_name), k)
         | None ->
           Alcotest.failf "%s has no cache key" fw.Driver.Compile.fw_name)
       (Driver.Compile.all_funcs mw))

let n_funcs mw = List.length (Driver.Compile.all_funcs mw)

let cache_cfg ?(pool = 4) store =
  {
    Config.default with
    Config.stations = pool + 1;
    noise_seed = 3;
    sched_policy = Sched.Dag_lpt;
    cache = store;
  }

let par cfg mw = (Parrun.run cfg mw (Plan.one_per_station mw)).Parrun.run

(* --- key derivation --- *)

let test_keys_deterministic () =
  let compile () = Driver.Compile.compile_module ~level:2 (W2.Gen.helper_program ()) in
  let a = keys_of (compile ()) and b = keys_of (compile ()) in
  Alcotest.(check (list (pair (pair string string) string)))
    "same module, same keys" a b;
  List.iter
    (fun ((_, name), k) ->
      Alcotest.(check int) (name ^ ": 32-hex key") 32 (String.length k);
      String.iter
        (fun c ->
          if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
            Alcotest.failf "%s: non-hex key %s" name k)
        k)
    a

let test_salt_sensitivity () =
  Alcotest.(check bool)
    "salts differ across optimization levels" true
    (Analysis.Depan.cache_salt ~opt_level:2 ~verify_each:false
     <> Analysis.Depan.cache_salt ~opt_level:0 ~verify_each:false);
  Alcotest.(check bool)
    "salts differ with verify-each" true
    (Analysis.Depan.cache_salt ~opt_level:2 ~verify_each:false
     <> Analysis.Depan.cache_salt ~opt_level:2 ~verify_each:true);
  let at level = keys_of (Driver.Compile.compile_module ~level (W2.Gen.helper_program ())) in
  List.iter2
    (fun (f, k2) (f', k0) ->
      Alcotest.(check (pair string string)) "same function order" f f';
      Alcotest.(check bool) (snd f ^ ": key salted by -O") true (k2 <> k0))
    (at 2) (at 0)

let test_edit_invalidates_exactly_closure () =
  let base = helpers () in
  let edited_name = Experiment.widest_edit base in
  let edited = helpers ~edit:edited_name () in
  (* The touch is semantics-neutral: the dependence DAG is unchanged,
     so the closure computed on either module agrees. *)
  let edges mw =
    List.concat_map
      (fun si ->
        List.map
          (fun (f, t, _) -> (si.Analysis.Depan.si_name, f, t))
          (Analysis.Depan.edges_by_name si))
      mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections
  in
  Alcotest.(check (list (triple string string string)))
    "neutral edit preserves the DAG" (edges base) (edges edited);
  let changed =
    List.filter_map
      (fun ((f, k), (f', k')) ->
        Alcotest.(check (pair string string)) "same function order" f f';
        if k <> k' then Some (snd f) else None)
      (List.combine (keys_of base) (keys_of edited))
  in
  Alcotest.(check int)
    (Printf.sprintf "edit of %s changes exactly its closure" edited_name)
    (Experiment.edit_closure edited.Driver.Compile.mw_analysis edited_name)
    (List.length changed);
  Alcotest.(check bool) "the edited function's own key changed" true
    (List.mem edited_name changed)

(* Unedited functions keep their keys bit for bit — the
   rename-insensitivity that makes warm hits possible at all. *)
let test_untouched_keys_stable () =
  let base = keys_of (helpers ()) in
  let edited_name = Experiment.widest_edit (helpers ()) in
  let closure =
    Experiment.edit_closure
      (helpers ()).Driver.Compile.mw_analysis edited_name
  in
  let edited = keys_of (helpers ~edit:edited_name ()) in
  let same =
    List.length (List.filter (fun e -> List.mem e edited) base)
  in
  Alcotest.(check int) "all keys outside the closure survive"
    (List.length base - closure) same

(* --- the runners --- *)

let test_cold_warm_parrun () =
  let mw = small8 () in
  let n = n_funcs mw in
  let store = Cache.create () in
  let cfg = cache_cfg (Some store) in
  let cold = par cfg mw in
  Alcotest.(check int) "cold: every lookup misses" n cold.Timings.cache_misses;
  Alcotest.(check int) "cold: no hits" 0 cold.Timings.cache_hits;
  Alcotest.(check int) "cold: nothing invalidated" 0 cold.Timings.cache_invalidated;
  Alcotest.(check int) "cold populated every function" n (Cache.size store);
  (* A second cold run on a fresh store produces identical bytes. *)
  let store2 = Cache.create () in
  ignore (par (cache_cfg (Some store2)) mw);
  Alcotest.(check (list (pair string (float 0.0))))
    "cold stores are byte-identical" (Cache.entries store) (Cache.entries store2);
  let warm = par cfg mw in
  Alcotest.(check int) "warm: every lookup hits" n warm.Timings.cache_hits;
  Alcotest.(check int) "warm: no misses" 0 warm.Timings.cache_misses;
  Alcotest.(check bool)
    (Printf.sprintf "warm strictly faster (%.1f < %.1f)"
       warm.Timings.elapsed cold.Timings.elapsed)
    true
    (warm.Timings.elapsed < cold.Timings.elapsed);
  Alcotest.(check (list (pair string (float 0.0))))
    "warm run stores nothing new" (Cache.entries store2) (Cache.entries store);
  List.iter
    (fun (k, _) ->
      Alcotest.(check int) "exactly-once store" 1 (Cache.store_count store k))
    (Cache.entries store)

let test_one_edit_recompiles_closure () =
  let mw = helpers () in
  let edited_name = Experiment.widest_edit mw in
  let mw_edit = helpers ~edit:edited_name () in
  let closure =
    Experiment.edit_closure mw_edit.Driver.Compile.mw_analysis edited_name
  in
  let store = Cache.create () in
  let cfg = cache_cfg (Some store) in
  ignore (par cfg mw);
  let edit = par cfg mw_edit in
  Alcotest.(check int) "edit recompiles exactly the closure" closure
    edit.Timings.cache_misses;
  Alcotest.(check int) "every edit miss is an invalidation" closure
    edit.Timings.cache_invalidated;
  Alcotest.(check int) "everything else hits"
    (n_funcs mw - closure) edit.Timings.cache_hits

let test_disabled_is_deterministic () =
  let mw = small8 () in
  let cfg = cache_cfg None in
  let a = par cfg mw and b = par cfg mw in
  Alcotest.(check (float 0.0)) "disabled runs bit-equal" a.Timings.elapsed
    b.Timings.elapsed;
  Alcotest.(check (list (float 0.0)))
    "per-station CPU bit-equal" a.Timings.cpu_per_station b.Timings.cpu_per_station;
  List.iter
    (fun (r : Timings.run) ->
      Alcotest.(check int) "no hits without a cache" 0 r.Timings.cache_hits;
      Alcotest.(check int) "no misses without a cache" 0 r.Timings.cache_misses;
      Alcotest.(check int) "no invalidations without a cache" 0
        r.Timings.cache_invalidated)
    [ a; b ]

let test_seqrun_cold_warm () =
  let mw = small8 () in
  let n = n_funcs mw in
  let store = Cache.create () in
  let cfg = { Config.default with Config.stations = 1; cache = Some store } in
  let cold = Seqrun.run cfg mw in
  let warm = Seqrun.run cfg mw in
  Alcotest.(check int) "seq cold: every lookup misses" n cold.Timings.cache_misses;
  Alcotest.(check int) "seq warm: every lookup hits" n warm.Timings.cache_hits;
  Alcotest.(check int) "seq warm: no misses" 0 warm.Timings.cache_misses;
  Alcotest.(check bool)
    (Printf.sprintf "seq warm strictly faster (%.1f < %.1f)"
       warm.Timings.elapsed cold.Timings.elapsed)
    true
    (warm.Timings.elapsed < cold.Timings.elapsed);
  Alcotest.(check int) "seq cold populated every function" n (Cache.size store)

let test_fine_grained_bypasses () =
  let mw = small8 () in
  let store = Cache.create () in
  let runs =
    [
      par { (cache_cfg (Some store)) with Config.fine_grained = true } mw;
      Seqrun.run
        {
          Config.default with
          Config.stations = 1;
          fine_grained = true;
          cache = Some store;
        }
        mw;
    ]
  in
  List.iter
    (fun (r : Timings.run) ->
      Alcotest.(check int) "fine grain: no hits" 0 r.Timings.cache_hits;
      Alcotest.(check int) "fine grain: no misses" 0 r.Timings.cache_misses)
    runs;
  Alcotest.(check int) "fine grain: store untouched" 0 (Cache.size store)

(* --- trace recovery --- *)

let test_trace_recovers_counters () =
  let mw = small8 () in
  let n = n_funcs mw in
  let store = Cache.create () in
  let tr = Trace.create () in
  (* Parrun arms Traceview.assert_matches_run itself on a fresh trace;
     recover the cache tallies explicitly on top. *)
  let cold = par { (cache_cfg (Some store)) with Config.trace = tr } mw in
  let r = Traceview.recover tr in
  Alcotest.(check int) "recovered misses" cold.Timings.cache_misses
    r.Traceview.r_cache_misses;
  Alcotest.(check int) "recovered hits" 0 r.Traceview.r_cache_hits;
  Alcotest.(check int) "recovered stores = artifacts stored" (Cache.size store)
    r.Traceview.r_cache_stores;
  let tr2 = Trace.create () in
  let warm = par { (cache_cfg (Some store)) with Config.trace = tr2 } mw in
  let r2 = Traceview.recover tr2 in
  Alcotest.(check int) "warm recovered hits" n r2.Traceview.r_cache_hits;
  Alcotest.(check int) "warm recovered hits = counter" warm.Timings.cache_hits
    r2.Traceview.r_cache_hits;
  Alcotest.(check int) "warm stores nothing" 0 r2.Traceview.r_cache_stores

(* --- chaos: faults and speculation --- *)

let test_chaos_exactly_once () =
  let mw = small8 () in
  let n = n_funcs mw in
  let ff = (par (cache_cfg (Some (Cache.create ()))) mw).Timings.elapsed in
  List.iter
    (fun rate ->
      let faults =
        Netsim.Fault.random ~seed:(chaos_seed ()) ~stations:5 ~rate
          ~horizon:(ff *. 1.5) ()
      in
      let store = Cache.create () in
      let faulty =
        par
          {
            (cache_cfg (Some store)) with
            Config.faults;
            retry_budget = 2;
            trace = Trace.create ();
          }
          mw
      in
      let label = Printf.sprintf "rate %.2f" rate in
      Alcotest.(check bool) (label ^ ": terminates") true
        (faulty.Timings.elapsed > 0.0);
      Alcotest.(check int) (label ^ ": every function stored") n
        (Cache.size store);
      List.iter
        (fun (k, _) ->
          Alcotest.(check int)
            (label ^ ": exactly-once store under faults")
            1 (Cache.store_count store k))
        (Cache.entries store);
      (* The store survives the chaos intact: a fault-free warm run
         hits on everything. *)
      let warm = par (cache_cfg (Some store)) mw in
      Alcotest.(check int) (label ^ ": warm after chaos hits all") n
        warm.Timings.cache_hits)
    [ 0.5; 1.0 ]

let test_chaos_spec_quarantine () =
  let mw = racy () in
  let n = n_funcs mw in
  let store = Cache.create () in
  let spec_cfg =
    {
      (cache_cfg ~pool:3 (Some store)) with
      Config.sched_policy = Sched.Dag_spec;
    }
  in
  let cold = par { spec_cfg with Config.trace = Trace.create () } mw in
  Alcotest.(check bool) "racy: at least one rollback" true
    (cold.Timings.spec_rolled_back >= 1);
  (* The empty store cannot hit, rollbacks notwithstanding: a
     quarantined speculative artifact never populates, so nothing can
     be served from it. *)
  Alcotest.(check int) "racy cold: no hits" 0 cold.Timings.cache_hits;
  Alcotest.(check int) "racy: every function stored once" n (Cache.size store);
  List.iter
    (fun (k, _) ->
      Alcotest.(check int) "racy: exactly-once store across rollbacks" 1
        (Cache.store_count store k))
    (Cache.entries store);
  (* Lookups are per attempt, and re-dispatched rollback attempts look
     up again — so the warm run can hit more often than it has
     functions, but it must never miss. *)
  let warm = par { spec_cfg with Config.trace = Trace.create () } mw in
  Alcotest.(check bool) "racy warm: at least one hit per function" true
    (warm.Timings.cache_hits >= n);
  Alcotest.(check int) "racy warm: no misses" 0 warm.Timings.cache_misses

(* --- properties --- *)

(* The tentpole property: one semantics-neutral edit changes exactly
   the keys of the edited function's invalidation closure.  The edit
   target is drawn at random from the helper program's functions. *)
let test_edit_closure_property () =
  let base = helpers () in
  let funcs = Driver.Compile.all_funcs base in
  let n = List.length funcs in
  QCheck.Test.make ~count:24 ~name:"one edit invalidates exactly its closure"
    QCheck.(int_range 0 (n - 1))
    (fun i ->
      let fw = List.nth funcs i in
      let name = fw.Driver.Compile.fw_name in
      let edited = helpers ~edit:name () in
      let changed =
        List.filter
          (fun ((_, k), (_, k')) -> k <> k')
          (List.combine (keys_of base) (keys_of edited))
      in
      List.length changed
      = Experiment.edit_closure edited.Driver.Compile.mw_analysis name
      && List.exists (fun ((f, _), _) -> snd f = name) changed)

let suites =
  [
    ( "cache.keys",
      [
        Alcotest.test_case "keys are deterministic" `Quick
          test_keys_deterministic;
        Alcotest.test_case "keys are salted" `Quick test_salt_sensitivity;
        Alcotest.test_case "edit invalidates exactly the closure" `Quick
          test_edit_invalidates_exactly_closure;
        Alcotest.test_case "untouched keys are stable" `Quick
          test_untouched_keys_stable;
      ] );
    ( "cache.runtime",
      [
        Alcotest.test_case "cold then warm (parallel)" `Quick
          test_cold_warm_parrun;
        Alcotest.test_case "one edit recompiles the closure" `Quick
          test_one_edit_recompiles_closure;
        Alcotest.test_case "disabled cache is deterministic" `Quick
          test_disabled_is_deterministic;
        Alcotest.test_case "cold then warm (sequential)" `Quick
          test_seqrun_cold_warm;
        Alcotest.test_case "fine grain bypasses the cache" `Quick
          test_fine_grained_bypasses;
        Alcotest.test_case "trace recovers the tallies" `Quick
          test_trace_recovers_counters;
      ] );
    ( "cache.chaos",
      [
        Alcotest.test_case "exactly-once under fault plans" `Slow
          test_chaos_exactly_once;
        Alcotest.test_case "speculative rollback never populates" `Quick
          test_chaos_spec_quarantine;
      ] );
    ( "cache.props",
      [ QCheck_alcotest.to_alcotest (test_edit_closure_property ()) ] );
  ]
