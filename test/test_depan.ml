(* The interprocedural dependence analyzer (Depan) and its integration
   into scheduling and dispatch.

   Static guarantees: edge reasons are pinned on a hand-written module,
   the SCC fixpoint converges on mutual recursion (and unions effects
   across the cycle), soundness mode materializes summary-limit edges,
   and W008/W009 fire exactly where documented.

   Dynamic guarantees: on edge-free modules the dag policy reproduces
   FCFS timings bit for bit (QCheck over sizes and pools), pairs the
   analyzer calls independent commute in the reference interpreter
   (fuzzed over random programs), and DAG-gated dispatch keeps the
   exactly-once write-back contract under the fault chaos matrix while
   the trace-backed race oracle watches every run. *)

open Parallel_cc

let cost = Driver.Cost.default

let parse src =
  let m = W2.Parser.module_of_string ~file:"test.w2" src in
  W2.Semcheck.check_module_exn m;
  m

let analyze ?sound ?max_tracked ?absint src =
  Analysis.Depan.analyze ?sound ?max_tracked ?absint (parse src)

let first_section t = List.hd t.Analysis.Depan.dp_sections

(* --- edge reasons, pinned --- *)

(* One module exhibiting each reason: [tinyf] is inlinable into
   [caller]; [looper]'s self-recursion blocks inlining, leaving a
   signature-agreement edge; [wg1]/[wg2] collide on the global [g];
   [sender]/[receiver] share channel X. *)
let edges_src =
  {|module edges
  section s cells 2
  var g : float;
  function tinyf(x: float) : float
  begin
    return x * 2.0;
  end
  function looper(n: int) : int
  begin
    if n <= 0 then
      return 0;
    end;
    return looper(n - 1) + 1;
  end
  function wg1(x: float) : float
  begin
    g := x;
    return g;
  end
  function wg2(x: float) : float
  begin
    g := g + x;
    return g;
  end
  function sender(x: float) : float
  begin
    send(X, x);
    return x;
  end
  function receiver(x: float) : float
    var v : float;
  begin
    receive(X, v);
    return v + x;
  end
  function caller(x: float) : float
  begin
    return tinyf(x) + float(looper(3));
  end
  end
end
|}

let test_edge_reasons () =
  let si = first_section (analyze edges_src) in
  let edges = Analysis.Depan.edges_by_name si in
  Alcotest.(check int) "exactly four edges" 4 (List.length edges);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (let f, t, _ = expected in
         Printf.sprintf "edge %s -> %s with pinned reasons" f t)
        true
        (List.mem expected edges))
    [
      ("tinyf", "caller", [ Analysis.Depan.Inline_of ]);
      ("looper", "caller", [ Analysis.Depan.Sig_agreement ]);
      ("wg1", "wg2", [ Analysis.Depan.Global_conflict "g" ]);
      ("sender", "receiver", [ Analysis.Depan.Channel_pair W2.Ast.Chan_x ]);
    ];
  (* The DAG structure these edges imply. *)
  Alcotest.(check bool) "wg1/wg2 dependent" true (Analysis.Depan.dependent si 2 3);
  Alcotest.(check bool) "tinyf/wg1 independent" true
    (Analysis.Depan.independent si 0 2);
  Alcotest.(check bool)
    (Printf.sprintf "licensed fraction %.3f" (Analysis.Depan.licensed_fraction si))
    true
    (Analysis.Depan.licensed_fraction si = 1.0 -. (4.0 /. 21.0))

let test_analysis_deterministic () =
  let a = Analysis.Depan.to_json (analyze edges_src) in
  let b = Analysis.Depan.to_json (analyze edges_src) in
  Alcotest.(check string) "two analyses serialize identically" a b

(* warpcc-analyze/3 keeps the document shape fixed across knobs: with
   the refinement off the absint-backed fields stay present — [pruned]
   and [disjoint_globals] as empty arrays, purity and cost as null —
   so schema consumers never need a feature probe. *)
let test_json_shape_stable_without_absint () =
  let j = Analysis.Depan.to_json (analyze ~absint:false edges_src) in
  let has s = Tutil.contains j s in
  Alcotest.(check bool) "schema /3" true
    (has "\"schema\": \"warpcc-analyze/3\"");
  Alcotest.(check bool) "kind module" true (has "\"kind\": \"module\"");
  Alcotest.(check bool) "pruned present" true (has "\"pruned\": [");
  Alcotest.(check bool) "disjoint_globals present and empty" true
    (has "\"disjoint_globals\": []");
  Alcotest.(check bool) "purity null" true (has "\"purity\": null");
  Alcotest.(check bool) "cost null" true (has "\"cost\": null");
  (* and nothing was pruned without the refinement *)
  Alcotest.(check bool) "pruned empty" true (has "\"pruned\": [\n\n      ]")

(* --- SCC fixpoint on mutual recursion --- *)

let mrec_src =
  {|module mrec
  section s cells 1
  var a : float;
  var b : float;
  function even(n: int) : bool
  begin
    if n = 0 then
      return true;
    end;
    a := a + 1.0;
    return odd(n - 1);
  end
  function odd(n: int) : bool
  begin
    if n = 0 then
      return false;
    end;
    b := b + 1.0;
    return even(n - 1);
  end
  end
end
|}

let test_mutual_recursion () =
  let si = first_section (analyze mrec_src) in
  let f = si.Analysis.Depan.si_funcs in
  Alcotest.(check int) "one SCC" f.(0).Analysis.Depan.fi_scc
    f.(1).Analysis.Depan.fi_scc;
  (* The fixpoint unions effects around the cycle: each function's
     summary sees the global the other one writes. *)
  Array.iter
    (fun (fi : Analysis.Depan.func_info) ->
      Alcotest.(check (list string))
        (fi.Analysis.Depan.fi_name ^ " summary writes both globals")
        [ "a"; "b" ] fi.Analysis.Depan.fi_summary.Analysis.Depan.gwrites)
    f;
  Alcotest.(check bool) "direct effects stay separate" true
    (f.(0).Analysis.Depan.fi_direct.Analysis.Depan.gwrites = [ "a" ]
    && f.(1).Analysis.Depan.fi_direct.Analysis.Depan.gwrites = [ "b" ]);
  Alcotest.(check bool)
    (Printf.sprintf "fixpoint needed extra sweeps (%d)"
       si.Analysis.Depan.si_fixpoint_sweeps)
    true
    (si.Analysis.Depan.si_fixpoint_sweeps >= 2);
  (* Cycle members are serialized by a sig_agreement chain; the
     unioned summaries also make both globals conflicts. *)
  Alcotest.(check bool) "even -> odd chained" true
    (List.mem
       ( "even",
         "odd",
         [
           Analysis.Depan.Sig_agreement;
           Analysis.Depan.Global_conflict "a";
           Analysis.Depan.Global_conflict "b";
         ] )
       (Analysis.Depan.edges_by_name si))

(* --- soundness mode at the summary cap --- *)

let lim_src =
  {|module lim
  section s cells 1
  var p : float;
  var q : float;
  function fat(x: float) : float
  begin
    p := x;
    q := x;
    return p + q;
  end
  function slim(x: float) : float
  begin
    return x;
  end
  end
end
|}

let has_limit_edge si =
  List.exists
    (fun (e : Analysis.Depan.edge) ->
      List.mem Analysis.Depan.Summary_limit e.Analysis.Depan.reasons)
    si.Analysis.Depan.si_edges

let test_summary_limit () =
  (* The base mechanism, with the refinement pass held off. *)
  let sound = first_section (analyze ~absint:false ~max_tracked:1 lim_src) in
  Alcotest.(check bool) "summary marked limited" true
    sound.Analysis.Depan.si_funcs.(0).Analysis.Depan.fi_summary.Analysis.Depan.limited;
  Alcotest.(check bool) "sound mode adds a summary_limit edge" true
    (has_limit_edge sound);
  let unsound =
    first_section (analyze ~absint:false ~sound:false ~max_tracked:1 lim_src)
  in
  Alcotest.(check bool) "unsound mode omits it" false (has_limit_edge unsound);
  Alcotest.(check bool) "limited flag survives either way" true
    unsound.Analysis.Depan.si_funcs.(0).Analysis.Depan.fi_summary.Analysis.Depan.limited;
  (* The abstract interpretation tracks every global regardless of the
     cap, sees that [slim] touches nothing [fat] writes, and discharges
     the blanket edge — with provenance. *)
  let refined = first_section (analyze ~max_tracked:1 lim_src) in
  Alcotest.(check bool) "absint discharges the blanket edge" false
    (has_limit_edge refined);
  Alcotest.(check bool) "the refutation is recorded" true
    (List.exists
       (fun (_, _, reason, by) ->
         reason = Analysis.Depan.Summary_limit
         && by = Analysis.Depan.Refuted_region)
       (Analysis.Depan.pruned_by_name refined));
  (* An uncapped analysis of the same module has no limit edges. *)
  Alcotest.(check bool) "default cap is wide enough" false
    (has_limit_edge (first_section (analyze lim_src)))

(* --- the coupling lints --- *)

let codes diags = List.map (fun d -> d.W2.Diag.d_code) diags

let test_w008 () =
  (* [edges_src]: wg1 and wg2 both access g and at least one writes it,
     so the write is coupling that no activation ever observes.  One
     warning per global, blaming the first writer. *)
  let diags = Analysis.Depan.lint (analyze edges_src) in
  Alcotest.(check (list string)) "writes nobody observes draw W008" [ "W008" ]
    (codes diags);
  List.iter
    (fun d ->
      Alcotest.(check (option string)) "blames the first writer" (Some "wg1")
        d.W2.Diag.d_func)
    diags;
  (* A global its only accessor writes is private state, not coupling. *)
  Alcotest.(check (list string)) "single accessor: no W008" []
    (codes (Analysis.Depan.lint (analyze lim_src)))

let test_w009 () =
  let send_only cells =
    Printf.sprintf
      {|module m
  section s cells %d
  function f(x: float) : float
  begin
    send(X, x);
    return x;
  end
  end
end
|}
      cells
  in
  Alcotest.(check (list string)) "unmatched send, 2 cells: W009" [ "W009" ]
    (codes (Analysis.Depan.lint (analyze (send_only 2))));
  Alcotest.(check (list string)) "single cell: boundary sends are fine" []
    (codes (Analysis.Depan.lint (analyze (send_only 1))));
  (* A receiver anywhere in the section pairs the sends. *)
  Alcotest.(check (list string)) "matched send/receive: no W009" []
    (List.filter
       (fun c -> c = "W009")
       (codes (Analysis.Depan.lint (analyze edges_src))))

(* --- edge-free modules: dag must be FCFS, bit for bit --- *)

let run_with ~policy ~pool mw =
  let plan = Plan.one_per_station mw in
  let cfg =
    {
      Config.default with
      Config.stations = pool + 1;
      noise_seed = 3;
      sched_policy = policy;
    }
  in
  (Parrun.run cfg mw plan).Parrun.run

let test_edge_free_dag_is_fcfs () =
  QCheck.Test.make ~count:40 ~name:"edge-free module: dag == fcfs bit-identical"
    QCheck.(triple (int_range 1 8) (int_range 2 6) bool)
    (fun (count, pool, small) ->
      let size = if small then W2.Gen.Small else W2.Gen.Tiny in
      let mw = Experiment.s_program_work ~size ~count () in
      (* S_n programs have no calls, globals or channels: edge-free. *)
      List.iter
        (fun si ->
          assert (si.Analysis.Depan.si_edges = []))
        mw.Driver.Compile.mw_analysis.Analysis.Depan.dp_sections;
      let fcfs = run_with ~policy:Sched.Fcfs ~pool mw in
      let dag = run_with ~policy:Sched.Dag ~pool mw in
      fcfs.Timings.elapsed = dag.Timings.elapsed
      && fcfs.Timings.cpu_per_station = dag.Timings.cpu_per_station
      && fcfs.Timings.dispatch_units = dag.Timings.dispatch_units)

(* --- independent pairs commute in the reference interpreter --- *)

(* Two random functions share a section; when the analyzer calls them
   independent, interpreting them in either order must produce the
   same per-function results and the same channel output streams.
   (When both send on X the analyzer orders them with a channel_pair
   edge — exactly the case where the combined stream is order
   sensitive.) *)
let test_independent_pairs_commute () =
  QCheck.Test.make ~count:120 ~name:"independent pair => interp order-insensitive"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let f =
        W2.Gen.random_function ~allow_channels:true ~seed
          ~size:(4 + (seed mod 17))
          ()
      in
      let g =
        {
          (W2.Gen.random_function ~allow_channels:true ~seed:(seed + 7919)
             ~size:(4 + (seed mod 23))
             ())
          with
          W2.Ast.fname = "prop_g";
        }
      in
      let m = W2.Gen.module_of_function f in
      let m =
        {
          m with
          W2.Ast.sections =
            List.map
              (fun s -> { s with W2.Ast.funcs = s.W2.Ast.funcs @ [ g ] })
              m.W2.Ast.sections;
        }
      in
      W2.Semcheck.check_module_exn m;
      let si = first_section (Analysis.Depan.analyze m) in
      if not (Analysis.Depan.independent si 0 1) then true
      else begin
        let sec = List.hd m.W2.Ast.sections in
        let args = [ W2.Interp.Vint 5; W2.Interp.Vfloat 1.5 ] in
        let play order =
          let channels, outputs =
            W2.Interp.queue_channels ~input_x:[] ~input_y:[]
          in
          let results =
            List.map
              (fun name -> (name, W2.Interp.run_function ~channels sec ~name ~args))
              order
          in
          (List.sort compare results, outputs ())
        in
        play [ f.W2.Ast.fname; "prop_g" ] = play [ "prop_g"; f.W2.Ast.fname ]
      end)

(* --- LPT tie-breaking is deterministic (and stable) --- *)

let section_names (plan : Plan.t) =
  List.map
    (fun (s, tasks) ->
      ( s,
        List.concat_map
          (fun (t : Plan.task) ->
            List.map (fun fw -> fw.Driver.Compile.fw_name) t.Plan.t_funcs)
          tasks ))
    plan.Plan.tasks_per_section

let test_lpt_tie_break () =
  (* Eight identical tiny functions: every cost estimate ties, so LPT
     must fall back to the original queue order — in full, not just as
     an unordered multiset. *)
  let plan = Plan.one_per_station (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:8 ()) in
  let threshold = Config.default.Config.batch_threshold in
  let lpt = Sched.schedule ~policy:Sched.Lpt ~cost ~threshold ~stations:5 plan in
  Alcotest.(check bool) "all-ties LPT preserves FCFS order" true
    (section_names lpt = section_names plan);
  (* And scheduling is a pure function of its inputs. *)
  let again = Sched.schedule ~policy:Sched.Lpt ~cost ~threshold ~stations:5 plan in
  Alcotest.(check bool) "same inputs, same schedule" true
    (section_names again = section_names lpt);
  let mixed = Plan.one_per_station (Experiment.user_program_work ()) in
  let s1 = Sched.schedule ~policy:Sched.Lpt ~cost ~threshold ~stations:4 mixed in
  let s2 = Sched.schedule ~policy:Sched.Lpt ~cost ~threshold ~stations:4 mixed in
  Alcotest.(check bool) "mixed sizes, deterministic order" true
    (section_names s1 = section_names s2)

(* --- chaos: exactly-once write-back under DAG-gated dispatch --- *)

let dag_cfg policy =
  {
    Config.default with
    Config.stations = 5;
    noise_seed = 0;
    sched_policy = policy;
  }

let run_dag ~policy ?(budget = Config.default.Config.retry_budget) mw faults =
  let plan = Plan.one_per_station mw in
  (* A fresh trace per run arms the race oracle inside Parrun.run: any
     dependence edge dispatched out of order fails the test here. *)
  let tr = Trace.create () in
  Parrun.run
    { (dag_cfg policy) with Config.faults; retry_budget = budget; trace = tr }
    mw plan

let scheduled_heads ~policy mw =
  let cfg = dag_cfg policy in
  let scheduled =
    Sched.schedule ~policy ~cost ~threshold:cfg.Config.batch_threshold
      ~stations:cfg.Config.stations (Plan.one_per_station mw)
  in
  List.concat_map
    (fun (_, tasks) ->
      List.map
        (fun (t : Plan.task) ->
          (List.hd t.Plan.t_funcs).Driver.Compile.fw_name)
        tasks)
    scheduled.Plan.tasks_per_section
  |> List.sort compare

let completed_heads (o : Parrun.outcome) =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n >= 3 && String.sub name (n - 3) 3 = "#p3" then None else Some name)
    o.Parrun.station_of_task
  |> List.sort compare

let test_chaos_dag () =
  (* The helper program's call graph gives the DAG real edges to gate
     on while stations crash underneath it. *)
  let mw = Experiment.helper_program_work () in
  List.iter
    (fun policy ->
      let expected = scheduled_heads ~policy mw in
      let ff = (run_dag ~policy mw Netsim.Fault.none).Parrun.run.Timings.elapsed in
      let plans =
        [
          ("crash", Netsim.Fault.Crash { station = 2; at = 0.3 *. ff });
          ("reclaim", Netsim.Fault.Reclaim { station = 2; at = 0.25 *. ff });
          ( "slowdown",
            Netsim.Fault.Slowdown
              { station = 3; from_ = 0.1 *. ff; until = 0.6 *. ff; factor = 3.0 }
          );
        ]
      in
      List.iter
        (fun (kind, event) ->
          List.iter
            (fun budget ->
              let label =
                Printf.sprintf "%s under %s budget=%d"
                  (Sched.policy_name policy) kind budget
              in
              let o =
                run_dag ~policy ~budget mw { Netsim.Fault.events = [ event ] }
              in
              Alcotest.(check bool)
                (label ^ ": terminates")
                true
                (o.Parrun.run.Timings.elapsed > 0.0);
              Alcotest.(check (list string))
                (label ^ ": every dispatch unit completed exactly once")
                expected (completed_heads o))
            [ 0; 2 ])
        plans)
    Sched.dag_policies

let suites =
  [
    ( "depan.static",
      [
        Alcotest.test_case "edge reasons pinned" `Quick test_edge_reasons;
        Alcotest.test_case "analysis deterministic" `Quick
          test_analysis_deterministic;
        Alcotest.test_case "json shape stable without absint" `Quick
          test_json_shape_stable_without_absint;
        Alcotest.test_case "mutual recursion fixpoint" `Quick
          test_mutual_recursion;
        Alcotest.test_case "summary-limit soundness" `Quick test_summary_limit;
        Alcotest.test_case "W008 coupling warning" `Quick test_w008;
        Alcotest.test_case "W009 unmatched send" `Quick test_w009;
        Alcotest.test_case "lpt tie-break" `Quick test_lpt_tie_break;
      ] );
    ( "depan.dynamic",
      [
        QCheck_alcotest.to_alcotest (test_edge_free_dag_is_fcfs ());
        QCheck_alcotest.to_alcotest (test_independent_pairs_commute ());
        Alcotest.test_case "chaos under dag dispatch" `Slow test_chaos_dag;
      ] );
  ]
