(* Robustness fuzzing: the frontend and the object-file loader must
   reject arbitrary garbage with their declared exceptions — never a
   crash, never an unexpected exception. *)

open W2

let well_formed_rejection name f =
  QCheck.Test.make ~name ~count:300 QCheck.printable_string (fun s ->
      match f s with
      | _ -> true
      | exception Lexer.Error (_, loc) -> loc.Loc.line >= 1
      | exception Parser.Error (_, loc) -> loc.Loc.line >= 1)

let prop_lexer_total =
  well_formed_rejection "lexer is total (accepts or raises Lexer.Error)"
    (fun s -> ignore (Lexer.tokenize s))

let prop_parser_total =
  well_formed_rejection "parser is total on random strings" (fun s ->
      ignore (Parser.module_of_string s))

(* Mutate a valid source: the parser either accepts or raises its own
   error, and on acceptance the checker's diagnostics are printable. *)
let prop_parser_on_mutated_source =
  let base =
    Pretty.module_to_string
      (Gen.module_of_function (Gen.sized_function ~name:"m" Gen.Small))
  in
  QCheck.Test.make ~name:"parser survives random source mutations" ~count:300
    QCheck.(triple (int_range 0 (String.length base - 1)) (int_range 0 255) small_nat)
    (fun (pos, byte, extra) ->
      let b = Bytes.of_string base in
      Bytes.set b pos (Char.chr byte);
      (* occasionally also truncate *)
      let mutated =
        if extra mod 3 = 0 then Bytes.sub_string b 0 (max 1 (pos + 1))
        else Bytes.to_string b
      in
      match Parser.module_of_string mutated with
      | m ->
        List.iter
          (fun e -> ignore (Semcheck.error_to_string e))
          (Semcheck.check_module m);
        true
      | exception Parser.Error (msg, _) -> String.length msg > 0
      | exception Lexer.Error (msg, _) -> String.length msg > 0)

(* The object loader: random corruption of a valid module must either
   decode to *something* or raise Bad_object — nothing else. *)
let prop_loader_total =
  let image =
    let m = Gen.module_of_function (Gen.sized_function ~name:"obj" Gen.Small) in
    let sec = List.hd (Midend.Lower.lower_module m) in
    List.iter (fun f -> ignore (Midend.Opt.optimize f)) sec.Midend.Ir.funcs;
    Warp.Link.link ~section:"s" ~cells:1
      (List.map
         (fun f -> (Warp.Codegen.compile_function f).Warp.Codegen.mfunc)
         sec.Midend.Ir.funcs)
  in
  let encoded = Warp.Asm.encode image in
  QCheck.Test.make ~name:"object loader is total under corruption" ~count:300
    QCheck.(triple (int_range 0 (String.length encoded - 1)) (int_range 0 255) bool)
    (fun (pos, byte, truncate) ->
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr byte);
      let corrupted =
        if truncate then Bytes.sub_string b 0 pos else Bytes.to_string b
      in
      match Warp.Asm.decode corrupted with
      | _ -> true
      | exception Warp.Asm.Bad_object _ -> true
      | exception _ -> false)

let prop_loader_random_bytes =
  QCheck.Test.make ~name:"object loader rejects random bytes" ~count:300
    QCheck.printable_string (fun s ->
      match Warp.Asm.decode s with
      | _ -> true (* astronomically unlikely, but not wrong *)
      | exception Warp.Asm.Bad_object _ -> true
      | exception _ -> false)

(* Optimizer-correctness oracle: any generated program that survives
   the frontend must still satisfy every IR invariant after the full
   -O3 pipeline, with the verifier re-run after each pass. *)
let prop_optimized_ir_verifies =
  QCheck.Test.make ~name:"optimized IR passes the verifier" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, size) ->
      let f = Gen.random_function ~seed ~size () in
      let m = Gen.module_of_function f in
      match Semcheck.check_module m with
      | _ :: _ -> true (* the frontend rejects it; nothing to lower *)
      | [] ->
        List.for_all
          (fun sec ->
            ignore (Midend.Opt.optimize_section ~level:3 ~verify_each:true sec);
            Midend.Irverify.check_section sec = [])
          (Midend.Lower.lower_module m))

(* Pretty-printing is idempotent: print (parse (print m)) = print m. *)
let prop_pretty_idempotent =
  QCheck.Test.make ~name:"pretty printing is idempotent" ~count:150
    QCheck.(pair small_nat small_nat)
    (fun (seed, size) ->
      let f = Gen.random_function ~seed ~size () in
      let once = Pretty.func_to_string f in
      let twice = Pretty.func_to_string (Parser.function_of_string once) in
      once = twice)

let suites =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest prop_lexer_total;
        QCheck_alcotest.to_alcotest prop_parser_total;
        QCheck_alcotest.to_alcotest prop_parser_on_mutated_source;
        QCheck_alcotest.to_alcotest prop_loader_total;
        QCheck_alcotest.to_alcotest prop_loader_random_bytes;
        QCheck_alcotest.to_alcotest prop_optimized_ir_verifies;
        QCheck_alcotest.to_alcotest prop_pretty_idempotent;
      ] );
  ]
