(* Chaos suite: the fault-injection layer and the recovery protocol.

   Each case runs the parallel compiler under a fault plan and checks
   the contract of Parrun's supervision: the compile terminates, every
   function of the module is compiled exactly once (placements cover
   all task heads with no duplicates — the idempotent-write-back
   guarantee), and faults only ever inflate the elapsed time.  The
   CHAOS_SEED environment variable (used by the CI chaos job) salts the
   randomized cases; all other cases are fixed-seed. *)

open Parallel_cc

let chaos_seed () =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (
    match int_of_string_opt s with Some n when n <> 0 -> n | _ -> 7)
  | None -> 7

let work () = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 ()

(* Pool of 4 stations + the master's; noise off so elapsed differences
   come from the faults alone. *)
let base_cfg ~fine =
  {
    Config.default with
    Config.stations = 5;
    noise_seed = 0;
    fine_grained = fine;
  }

let run_with ~fine ?(budget = Config.default.Config.retry_budget) faults =
  let mw = work () in
  let plan = Plan.one_per_station mw in
  Parrun.run
    { (base_cfg ~fine) with Config.faults; retry_budget = budget }
    mw plan

let fault_free_elapsed ~fine =
  (run_with ~fine Netsim.Fault.none).Parrun.run.Timings.elapsed

(* Task-head placements, phase-3 entries dropped. *)
let completed_heads (o : Parrun.outcome) =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n >= 3 && String.sub name (n - 3) 3 = "#p3" then None else Some name)
    o.Parrun.station_of_task

(* Every function compiled exactly once, whatever happened. *)
let check_coverage label (o : Parrun.outcome) =
  let mw = work () in
  let all =
    List.map (fun fw -> fw.Driver.Compile.fw_name) (Driver.Compile.all_funcs mw)
    |> List.sort compare
  in
  let got = List.sort compare (completed_heads o) in
  Alcotest.(check (list string)) (label ^ ": all tasks completed once") all got

(* --- plan generation --- *)

let test_plan_deterministic () =
  let make () =
    Netsim.Fault.random ~seed:42 ~stations:8 ~rate:0.7 ~horizon:1000.0 ()
  in
  let a = make () and b = make () in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  Alcotest.(check bool) "plan non-trivial" true
    (List.length a.Netsim.Fault.events > 0)

let test_plan_rate_superset () =
  (* Same seed: every event of the low-rate plan appears, identically
     timed, in the high-rate plan. *)
  let plan rate =
    Netsim.Fault.random ~seed:13 ~stations:10 ~rate ~horizon:500.0 ()
  in
  let lo = plan 0.3 and hi = plan 1.0 in
  Alcotest.(check bool) "low-rate events ⊆ high-rate events" true
    (List.for_all
       (fun e -> List.mem e hi.Netsim.Fault.events)
       lo.Netsim.Fault.events);
  Alcotest.(check bool) "high rate adds events" true
    (List.length hi.Netsim.Fault.events > List.length lo.Netsim.Fault.events)

let test_plan_never_faults_master () =
  let p = Netsim.Fault.random ~seed:5 ~stations:6 ~rate:1.0 ~horizon:100.0 () in
  Alcotest.(check bool) "station 0 untouched" true
    (Netsim.Fault.crash_time p ~station:0 = infinity
    && Netsim.Fault.reclaim_time p ~station:0 = infinity
    && Netsim.Fault.station_slowdown p ~station:0 ~at:50.0 = 1.0)

(* --- zero-fault exactness and determinism --- *)

let test_zero_fault_exact () =
  (* An empty plan takes the legacy code path: elapsed is bit-identical
     run to run and equal to the pre-fault-tolerance schedule. *)
  let a = fault_free_elapsed ~fine:false in
  let b = fault_free_elapsed ~fine:false in
  Alcotest.(check (float 0.0)) "bit-identical elapsed" a b;
  let r = (run_with ~fine:false Netsim.Fault.none).Parrun.run in
  Alcotest.(check int) "no retries" 0 r.Timings.retries;
  Alcotest.(check int) "no fallbacks" 0 r.Timings.fallback_tasks;
  Alcotest.(check int) "no stations lost" 0 r.Timings.stations_lost;
  Alcotest.(check (float 0.0)) "no wasted cpu" 0.0 r.Timings.wasted_cpu

let test_faulty_run_deterministic () =
  let plan =
    Netsim.Fault.random ~seed:99 ~stations:5 ~rate:1.0
      ~horizon:(fault_free_elapsed ~fine:false)
      ()
  in
  let a = (run_with ~fine:false plan).Parrun.run in
  let b = (run_with ~fine:false plan).Parrun.run in
  Alcotest.(check (float 0.0)) "same elapsed" a.Timings.elapsed b.Timings.elapsed;
  Alcotest.(check int) "same retries" a.Timings.retries b.Timings.retries;
  Alcotest.(check (float 0.0)) "same wasted cpu" a.Timings.wasted_cpu
    b.Timings.wasted_cpu

(* --- the chaos matrix: every fault kind x grain x retry budget --- *)

let single_event_plans ff =
  [
    ("crash", Netsim.Fault.Crash { station = 2; at = 0.3 *. ff });
    ("reclaim", Netsim.Fault.Reclaim { station = 2; at = 0.25 *. ff });
    ( "slowdown",
      Netsim.Fault.Slowdown
        { station = 3; from_ = 0.1 *. ff; until = 0.6 *. ff; factor = 3.0 } );
    ( "fs-brownout",
      Netsim.Fault.Fs_brownout
        { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 4.0 } );
    ( "ether-degrade",
      Netsim.Fault.Ether_degrade
        { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 3.0 } );
  ]

let test_chaos_matrix () =
  List.iter
    (fun fine ->
      let ff = fault_free_elapsed ~fine in
      List.iter
        (fun (kind, event) ->
          List.iter
            (fun budget ->
              let label =
                Printf.sprintf "%s %s budget=%d"
                  (if fine then "fine" else "coarse")
                  kind budget
              in
              let o =
                run_with ~fine ~budget { Netsim.Fault.events = [ event ] }
              in
              let r = o.Parrun.run in
              Alcotest.(check bool)
                (label ^ ": terminates with nonzero elapsed")
                true
                (r.Timings.elapsed > 0.0);
              (* Fine grain can deflate slightly: a fallback compiles
                 the fused phases on the master, undercutting the
                 two-claim remote schedule it replaces. *)
              let floor = if fine then 0.95 else 0.999 in
              Alcotest.(check bool)
                (Printf.sprintf "%s: elapsed %.1f >= fault-free %.1f" label
                   r.Timings.elapsed ff)
                true
                (r.Timings.elapsed >= floor *. ff);
              check_coverage label o)
            [ 0; 2 ])
        (single_event_plans ff))
    [ false; true ]

(* --- the degradation ladder: crash -> re-dispatch -> fallback --- *)

let test_budget_exhaustion_falls_back () =
  (* Every pool station dies early; a one-retry budget must exhaust and
     the section masters must finish the work on the master's own
     workstation. *)
  let ff = fault_free_elapsed ~fine:false in
  let events =
    List.map
      (fun s ->
        Netsim.Fault.Crash { station = s; at = (0.05 *. ff) +. float_of_int s })
      [ 1; 2; 3; 4 ]
  in
  let o = run_with ~fine:false ~budget:1 { Netsim.Fault.events } in
  let r = o.Parrun.run in
  Alcotest.(check bool) "terminates" true (r.Timings.elapsed > 0.0);
  Alcotest.(check int) "all pool stations lost" 4 r.Timings.stations_lost;
  Alcotest.(check bool)
    (Printf.sprintf "retries %d >= 1" r.Timings.retries)
    true (r.Timings.retries >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "fallbacks %d >= 1" r.Timings.fallback_tasks)
    true
    (r.Timings.fallback_tasks >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "wasted cpu %.1f > 0" r.Timings.wasted_cpu)
    true
    (r.Timings.wasted_cpu > 0.0);
  check_coverage "budget exhaustion" o

let test_crash_retries_on_live_station () =
  (* One station dies but the pool has spares: the task is re-dispatched
     and no fallback is needed. *)
  let ff = fault_free_elapsed ~fine:false in
  let plan =
    { Netsim.Fault.events = [ Netsim.Fault.Crash { station = 2; at = 0.3 *. ff } ] }
  in
  let r = (run_with ~fine:false ~budget:2 plan).Parrun.run in
  Alcotest.(check int) "one station lost" 1 r.Timings.stations_lost;
  Alcotest.(check int) "no fallback needed" 0 r.Timings.fallback_tasks

(* --- monotone inflation --- *)

let test_inflation_monotone_in_rate () =
  let ff = fault_free_elapsed ~fine:false in
  let elapsed rate =
    if rate <= 0.0 then ff
    else
      let plan =
        Netsim.Fault.random ~seed:11 ~stations:5 ~rate ~horizon:(1.5 *. ff) ()
      in
      (run_with ~fine:false plan).Parrun.run.Timings.elapsed
  in
  let e0 = elapsed 0.0 and e5 = elapsed 0.5 and e10 = elapsed 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.1f <= %.1f <= %.1f" e0 e5 e10)
    true
    (e0 <= e5 *. 1.001 && e5 <= e10 *. 1.001);
  Alcotest.(check bool) "full rate really hurts" true (e10 > 1.01 *. e0)

(* --- randomized smoke (salted by CHAOS_SEED in CI) --- *)

let test_random_chaos () =
  List.iter
    (fun fine ->
      let ff = fault_free_elapsed ~fine in
      let plan =
        Netsim.Fault.random
          ~seed:(chaos_seed ())
          ~stations:5 ~rate:1.0 ~horizon:(1.5 *. ff) ()
      in
      List.iter
        (fun budget ->
          let label =
            Printf.sprintf "seed=%d %s budget=%d" (chaos_seed ())
              (if fine then "fine" else "coarse")
              budget
          in
          let o = run_with ~fine ~budget plan in
          Alcotest.(check bool)
            (label ^ ": terminates")
            true
            (o.Parrun.run.Timings.elapsed > 0.0);
          Alcotest.(check bool)
            (label ^ ": no deflation")
            true
            (o.Parrun.run.Timings.elapsed >= (if fine then 0.95 else 0.999) *. ff);
          check_coverage label o)
        [ 0; 2 ])
    [ false; true ]

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
        Alcotest.test_case "rate superset" `Quick test_plan_rate_superset;
        Alcotest.test_case "master immune" `Quick test_plan_never_faults_master;
      ] );
    ( "faults.recovery",
      [
        Alcotest.test_case "zero-fault exact" `Quick test_zero_fault_exact;
        Alcotest.test_case "faulty run deterministic" `Quick
          test_faulty_run_deterministic;
        Alcotest.test_case "chaos matrix" `Slow test_chaos_matrix;
        Alcotest.test_case "budget exhaustion falls back" `Quick
          test_budget_exhaustion_falls_back;
        Alcotest.test_case "crash re-dispatches" `Quick
          test_crash_retries_on_live_station;
        Alcotest.test_case "inflation monotone" `Slow
          test_inflation_monotone_in_rate;
        Alcotest.test_case "random chaos" `Slow test_random_chaos;
      ] );
  ]
