(* Tests for the critical-path profiler.

   The load-bearing property is exactness: the walk's buckets must fold
   to Trace.end_time as floats — no epsilons — on every trace the
   runner can produce, so the invariant is checked across the full
   fault x policy matrix (plus a CHAOS_SEED-salted QCheck sweep).  On
   top of that: pinned golden critical paths for the shipped fir.w2 and
   coupled.w2 examples, agreement between the infinite-stations what-if
   and the Depan si_levels bound on edge-free programs, and the
   acceptance bar that profiling a finished trace never moves a
   simulated timing by a bit. *)

open Parallel_cc

let chaos_seed () =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (
    match int_of_string_opt s with Some n when n <> 0 -> n | _ -> 7)
  | None -> 7

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let example name =
  (* [dune runtest] runs in _build/default/test (examples are a sibling
     via the dune deps); [dune exec] runs from the project root. *)
  let dir =
    List.find Sys.file_exists [ Filename.concat ".." "examples"; "examples" ]
  in
  Driver.Compile.compile_source ~file:name
    (read_file (Filename.concat dir name))

(* Pool of [pool] stations + the master's; mirrors the warpcc simulate
   derivation so `warpcc profile` reproduces the same traces. *)
let cfg_for ?(policy = Sched.Fcfs) ?(faults = Netsim.Fault.none) ~pool () =
  {
    Config.default with
    Config.stations = pool + 1;
    noise_seed = 1 + (17 * pool);
    sched_policy = policy;
    faults;
  }

let scheduled cfg plan =
  Sched.schedule ~static:cfg.Config.static_cost
    ~policy:(Config.effective_policy cfg) ~cost:cfg.Config.cost
    ~threshold:cfg.Config.batch_threshold ~stations:cfg.Config.stations plan

(* One traced run and its profile, anchored at the run's elapsed time
   (straggler attempts may record spans past it) with the scheduled
   plan wired in. *)
let run_and_profile cfg mw plan =
  let tr = Trace.create () in
  let cfg = { cfg with Config.trace = tr } in
  let run = (Parrun.run cfg mw plan).Parrun.run in
  let p =
    Critpath.of_trace ~plan:(scheduled cfg plan) ~elapsed:run.Timings.elapsed
      tr
  in
  (tr, run, p)

let check_exact label (run : Timings.run) (p : Critpath.profile) =
  Critpath.assert_exact p;
  let sum =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 p.Critpath.p_buckets
  in
  Alcotest.(check (float 0.0))
    (label ^ ": buckets fold to elapsed exactly")
    run.Timings.elapsed sum;
  Alcotest.(check (float 0.0))
    (label ^ ": profile elapsed = run elapsed")
    run.Timings.elapsed p.Critpath.p_elapsed

(* --- the fault x policy matrix --- *)

let test_exact_sum_matrix () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:8 () in
  let pool = 4 in
  let plan = Plan.grouped mw ~processors:pool in
  let free =
    let cfg = cfg_for ~pool () in
    (Parrun.run cfg mw plan).Parrun.run.Timings.elapsed
  in
  List.iter
    (fun policy ->
      List.iter
        (fun rate ->
          let faults =
            if rate = 0.0 then Netsim.Fault.none
            else
              Netsim.Fault.random ~seed:(chaos_seed ()) ~stations:(pool + 1)
                ~rate ~horizon:(1.5 *. free) ()
          in
          let label =
            Printf.sprintf "%s rate=%.2f" (Sched.policy_name policy) rate
          in
          let cfg = cfg_for ~policy ~faults ~pool () in
          let tr, run, p = run_and_profile cfg mw plan in
          check_exact label run p;
          (* The default anchor (no run in hand) profiles the whole
             trace, straggler tail included — exactness must hold
             against [Trace.end_time] too. *)
          let pd = Critpath.of_trace tr in
          Critpath.assert_exact pd;
          Alcotest.(check (float 0.0))
            (label ^ ": default anchor folds to end_time")
            (Trace.end_time tr)
            (List.fold_left
               (fun acc (_, v) -> acc +. v)
               0.0 pd.Critpath.p_buckets))
        [ 0.0; 0.5; 1.0 ])
    Sched.all_policies

(* The same property under QCheck-driven seeds, budgets and pools. *)
let test_exact_sum_chaos () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 () in
  QCheck.Test.make ~count:12
    ~name:"profile buckets fold to end_time under random faults"
    QCheck.(triple (int_range 1 10_000) (int_range 0 5) (int_range 2 5))
    (fun (seed, policy_ix, pool) ->
      let policy = List.nth Sched.all_policies policy_ix in
      let plan = Plan.grouped mw ~processors:pool in
      let free =
        (Parrun.run (cfg_for ~policy ~pool ()) mw plan).Parrun.run
          .Timings.elapsed
      in
      let faults =
        Netsim.Fault.random
          ~seed:(seed * chaos_seed ())
          ~stations:(pool + 1) ~rate:1.0 ~horizon:(1.5 *. free) ()
      in
      let cfg = { (cfg_for ~policy ~faults ~pool ()) with Config.retry_budget = 1 } in
      let _, run, p = run_and_profile cfg mw plan in
      Critpath.assert_exact p;
      List.fold_left (fun acc (_, v) -> acc +. v) 0.0 p.Critpath.p_buckets
      = run.Timings.elapsed)

(* --- speculation: rollback windows on the path, metrics complete --- *)

let test_spec_rollback_profiled () =
  let mw = example "racy.w2" in
  let plan = Plan.one_per_station mw in
  let pool = Plan.task_count plan in
  let cfg = cfg_for ~policy:Sched.Dag_spec ~pool () in
  let tr, run, p = run_and_profile cfg mw plan in
  check_exact "racy dag+spec" run p;
  Alcotest.(check bool) "attempts rolled back" true (run.Timings.spec_rolled_back >= 1);
  (* Satellite: Metrics.of_trace now carries the speculation counters,
     derived from the same spans Traceview.recover reads. *)
  let m = Metrics.of_trace tr in
  Alcotest.(check (float 0.0)) "spec_dispatched derived"
    (float_of_int run.Timings.spec_dispatched)
    (Metrics.counter m "spec_dispatched");
  Alcotest.(check (float 0.0)) "spec_committed derived"
    (float_of_int run.Timings.spec_committed)
    (Metrics.counter m "spec_committed");
  Alcotest.(check (float 0.0)) "spec_rolled_back derived"
    (float_of_int run.Timings.spec_rolled_back)
    (Metrics.counter m "spec_rolled_back")

(* --- edge-free agreement with the Depan si_levels bound --- *)

let test_edge_free_bound_agreement () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Small ~count:8 () in
  let b = Critpath.dag_bound ~cost:Config.default.Config.cost mw in
  Alcotest.(check int) "edge-free: one antichain level" 1 b.Critpath.db_max_levels;
  let plan = Plan.one_per_station mw in
  let cfg = cfg_for ~pool:(Plan.task_count plan) () in
  let _, run, p = run_and_profile cfg mw plan in
  check_exact "edge-free S_8" run p;
  (* The profile agrees with the analysis: no dependence edge on the
     path, no dependence-wait seconds, and the infinite-stations
     what-if stays under the DAG bound (dependences are not the
     limit; compute is). *)
  Alcotest.(check (list (pair string string))) "no dependence edges crossed" []
    p.Critpath.p_dep_edges;
  Alcotest.(check (float 0.0)) "no dependence-wait" 0.0
    (List.assoc "dependence_wait" p.Critpath.p_buckets);
  let inf_stations =
    List.find
      (fun w -> w.Critpath.w_name = "infinite-stations")
      (Critpath.what_ifs p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "what-if %.3f <= dag bound %.3f" inf_stations.Critpath.w_speedup
       b.Critpath.db_speedup)
    true
    (inf_stations.Critpath.w_speedup <= b.Critpath.db_speedup +. 1e-9)

(* --- pinned golden critical paths for the shipped examples --- *)

let golden label ~policy ~expect mw =
  let plan = Plan.one_per_station mw in
  let pool = Plan.task_count plan in
  let cfg = cfg_for ~policy ~pool () in
  let _, run, p = run_and_profile cfg mw plan in
  check_exact label run p;
  let dominant =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
      ("", neg_infinity) p.Critpath.p_buckets
    |> fst
  in
  let got =
    Printf.sprintf "elapsed=%.17g segments=%d dominant=%s deps=[%s]"
      p.Critpath.p_elapsed
      (List.length p.Critpath.p_segments)
      dominant
      (String.concat ";"
         (List.map (fun (a, b) -> a ^ "->" ^ b) p.Critpath.p_dep_edges))
  in
  Alcotest.(check string) (label ^ ": golden critical path") expect got

let test_golden_fir () =
  golden "fir fcfs" ~policy:Sched.Fcfs
    ~expect:
      "elapsed=80.654066790689626 segments=25 dominant=cpu deps=[clamp->main]"
    (example "fir.w2")

let test_golden_coupled () =
  golden "coupled dag+lpt" ~policy:Sched.Dag_lpt
    ~expect:
      "elapsed=93.547721684118329 segments=34 dominant=cpu deps=[feed->drain]"
    (example "coupled.w2")

(* --- profiling never perturbs the simulation --- *)

let test_profile_never_perturbs () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 () in
  let plan = Plan.grouped mw ~processors:2 in
  let play () =
    let tr = Trace.create () in
    let run =
      (Parrun.run { (cfg_for ~pool:2 ()) with Config.trace = tr } mw plan)
        .Parrun.run
    in
    (tr, run)
  in
  let tr1, run1 = play () in
  let before = (Trace.span_count tr1, Trace.instant_count tr1) in
  let p = Critpath.of_trace ~plan:(scheduled (cfg_for ~pool:2 ()) plan) tr1 in
  Critpath.assert_exact p;
  ignore (Critpath.what_ifs p);
  ignore (Critpath.top p);
  ignore (Critpath.path_flows p);
  (* Profiling reads the trace; it must not grow or shrink it. *)
  Alcotest.(check (pair int int)) "trace untouched by profiling" before
    (Trace.span_count tr1, Trace.instant_count tr1);
  (* And a fresh identical run — with no profiler anywhere near it —
     reproduces the same timings bit for bit. *)
  let _, run2 = play () in
  Alcotest.(check (float 0.0)) "elapsed bit-identical" run1.Timings.elapsed
    run2.Timings.elapsed;
  Alcotest.(check (list (float 0.0))) "per-station CPU bit-identical"
    run1.Timings.cpu_per_station run2.Timings.cpu_per_station

(* --- flows are well-formed hops of the path --- *)

let test_path_flows () =
  let mw = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:8 () in
  (* Oversubscribe the pool so claims queue: the pool-queue-depth
     counter then has points to emit. *)
  let plan = Plan.grouped mw ~processors:4 in
  let cfg = cfg_for ~pool:2 () in
  let tr, run, p = run_and_profile cfg mw plan in
  check_exact "flows run" run p;
  let flows = Critpath.path_flows p in
  Alcotest.(check bool) "path hops between tracks" true (flows <> []);
  List.iter
    (fun (ft, t0, tt, t1) ->
      Alcotest.(check bool) "hop changes track" true (ft <> tt);
      Alcotest.(check (float 0.0)) "hop is instantaneous" t0 t1)
    flows;
  (* The chrome exporter accepts them (and the counter tracks). *)
  let json = Trace.to_chrome_json ~flows tr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Tutil.contains json needle))
    [
      "\"ph\": \"s\"";
      "\"ph\": \"f\"";
      "critical-path";
      "stations-busy";
      "pool-queue-depth";
      "fs-in-flight";
    ]

let suites =
  [
    ( "critpath.exact",
      [
        Alcotest.test_case "fault x policy matrix" `Slow test_exact_sum_matrix;
        QCheck_alcotest.to_alcotest (test_exact_sum_chaos ());
      ] );
    ( "critpath.spec",
      [ Alcotest.test_case "rollback profiled" `Quick test_spec_rollback_profiled ] );
    ( "critpath.bounds",
      [
        Alcotest.test_case "edge-free agrees with si_levels" `Quick
          test_edge_free_bound_agreement;
      ] );
    ( "critpath.golden",
      [
        Alcotest.test_case "fir.w2" `Quick test_golden_fir;
        Alcotest.test_case "coupled.w2" `Quick test_golden_coupled;
      ] );
    ( "critpath.purity",
      [
        Alcotest.test_case "profiling never perturbs" `Quick
          test_profile_never_perturbs;
        Alcotest.test_case "path flows" `Quick test_path_flows;
      ] );
  ]
