(* Tests for the parallel compiler: planning, the simulated runs, the
   overhead decomposition, and the headline phenomena of the paper. *)

open Parallel_cc

let medium_work count =
  Experiment.s_program_work ~size:W2.Gen.Medium ~count ()

(* --- plan --- *)

let test_plan_one_per_station () =
  let mw = medium_work 4 in
  let plan = Plan.one_per_station mw in
  Alcotest.(check int) "4 tasks" 4 (Plan.task_count plan);
  List.iter
    (fun (_, tasks) ->
      List.iter
        (fun (t : Plan.task) ->
          Alcotest.(check int) "singleton" 1 (List.length t.Plan.t_funcs))
        tasks)
    plan.Plan.tasks_per_section

let test_plan_grouped_counts () =
  let mw = Experiment.user_program_work () in
  List.iter
    (fun p ->
      let plan = Plan.grouped mw ~processors:p in
      let tasks = Plan.task_count plan in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d -> %d tasks" p tasks)
        true
        (tasks >= 3 (* one per section at least *) && tasks <= max p 3))
    [ 2; 3; 5; 9 ]

let test_plan_grouped_balance () =
  (* LPT must not put the two largest functions of a section in the same
     bin when two bins are available. *)
  let mw = Experiment.user_program_work () in
  let plan = Plan.grouped mw ~processors:6 in
  List.iter
    (fun (_, tasks) ->
      let locs = List.map Plan.task_loc tasks in
      match List.sort compare locs with
      | smallest :: _ ->
        Alcotest.(check bool) "no empty task" true (smallest > 0)
      | [] -> Alcotest.fail "section lost its tasks")
    plan.Plan.tasks_per_section

let test_plan_covers_all_functions () =
  let mw = medium_work 8 in
  List.iter
    (fun plan ->
      let planned =
        List.concat_map
          (fun (_, tasks) -> List.concat_map (fun t -> t.Plan.t_funcs) tasks)
          plan.Plan.tasks_per_section
        |> List.map (fun fw -> fw.Driver.Compile.fw_name)
        |> List.sort compare
      in
      let all =
        List.map (fun fw -> fw.Driver.Compile.fw_name) (Driver.Compile.all_funcs mw)
        |> List.sort compare
      in
      Alcotest.(check (list string)) "all functions planned" all planned)
    [ Plan.one_per_station mw; Plan.grouped mw ~processors:3 ]

(* --- runs --- *)

let test_seqrun_deterministic () =
  let mw = medium_work 2 in
  let cfg = { Config.default with Config.stations = 1 } in
  let a = Seqrun.run cfg mw and b = Seqrun.run cfg mw in
  Alcotest.(check (float 1e-9)) "same elapsed" a.Timings.elapsed b.Timings.elapsed

let test_parrun_uses_stations () =
  let mw = medium_work 4 in
  let plan = Plan.one_per_station mw in
  let outcome = Parrun.run { Config.default with Config.stations = 5 } mw plan in
  Alcotest.(check int) "placements recorded" 4
    (List.length outcome.Parrun.station_of_task);
  Alcotest.(check bool) "several stations busy" true
    (outcome.Parrun.run.Timings.stations_used >= 4)

let test_parrun_pool_limits_concurrency () =
  (* With 2 stations for 4 tasks, elapsed must exceed the 4-station
     run. *)
  let mw = medium_work 4 in
  let plan = Plan.one_per_station mw in
  let wide = (Parrun.run { Config.default with Config.stations = 5 } mw plan).Parrun.run in
  let narrow = (Parrun.run { Config.default with Config.stations = 3 } mw plan).Parrun.run in
  Alcotest.(check bool)
    (Printf.sprintf "narrow %.0f > wide %.0f" narrow.Timings.elapsed wide.Timings.elapsed)
    true
    (narrow.Timings.elapsed > wide.Timings.elapsed)

let test_overhead_decomposition_consistent () =
  let mw = medium_work 4 in
  let c = Experiment.measure mw in
  Alcotest.(check (float 1e-6)) "sys = total - impl" c.Timings.sys_overhead
    (c.Timings.total_overhead -. c.Timings.impl_overhead);
  Alcotest.(check bool) "impl overhead positive" true (c.Timings.impl_overhead > 0.0)

(* --- the paper's phenomena --- *)

let test_tiny_functions_useless () =
  (* Section 4.2.1: for small functions, parallel compilation is of no
     use. *)
  let mw = Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 () in
  let c = Experiment.measure mw in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f <= 1" c.Timings.speedup)
    true (c.Timings.speedup <= 1.0)

let test_large_functions_win () =
  (* The headline: speedup 3-6 with <= 9 processors for big functions. *)
  let mw = Experiment.s_program_work ~size:W2.Gen.Large ~count:8 () in
  let c = Experiment.measure mw in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f in [3, 8]" c.Timings.speedup)
    true
    (c.Timings.speedup >= 3.0 && c.Timings.speedup <= 8.0)

let test_speedup_grows_with_functions () =
  let s n =
    (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Large ~count:n ()))
      .Timings.speedup
  in
  let s1 = s 1 and s4 = s 4 and s8 = s 8 in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f < %.2f < %.2f" s1 s4 s8)
    true
    (s1 < s4 && s4 < s8)

let test_medium_negative_system_overhead () =
  (* Figure 9: at one function, the sequential compiler's own GC load
     makes the parallel compiler's system overhead negative. *)
  let mw = Experiment.s_program_work ~size:W2.Gen.Medium ~count:1 () in
  let c = Experiment.measure mw in
  Alcotest.(check bool)
    (Printf.sprintf "sys overhead %.1f%% < 0" c.Timings.rel_sys_overhead)
    true
    (c.Timings.rel_sys_overhead < 0.0)

let test_huge_worse_than_large () =
  (* Figures 6/10: f_huge falls back behind f_large. *)
  let large =
    (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Large ~count:8 ()))
      .Timings.speedup
  in
  let huge =
    (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Huge ~count:8 ()))
      .Timings.speedup
  in
  Alcotest.(check bool)
    (Printf.sprintf "huge %.2f < large %.2f" huge large)
    true (huge < large)

let test_overhead_grows_with_n () =
  (* Section 4.2.3: relative overhead increases with the number of
     functions, regardless of size. *)
  List.iter
    (fun size ->
      let ov n =
        (Experiment.measure (Experiment.s_program_work ~size ~count:n ()))
          .Timings.rel_total_overhead
      in
      let o2 = ov 2 and o8 = ov 8 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.1f%% < %.1f%%" (W2.Gen.size_name size) o2 o8)
        true (o2 < o8))
    [ W2.Gen.Tiny; W2.Gen.Large; W2.Gen.Huge ]

let test_user_program_speedups () =
  (* Figure 11: decent speedup at 9 processors, superlinear-ish shape at
     2, and 5 processors close to 9. *)
  let pts = Experiment.user_program () in
  let speedup p =
    (List.find (fun (x : Experiment.point) -> x.Experiment.n_functions = p) pts)
      .Experiment.comparison.Timings.speedup
  in
  Alcotest.(check bool)
    (Printf.sprintf "9 procs: %.2f in [3, 5.5]" (speedup 9))
    true
    (speedup 9 >= 3.0 && speedup 9 <= 5.5);
  Alcotest.(check bool)
    (Printf.sprintf "2 procs: %.2f in [1.6, 2.6]" (speedup 2))
    true
    (speedup 2 >= 1.6 && speedup 2 <= 2.6);
  Alcotest.(check bool)
    (Printf.sprintf "5 procs (%.2f) within 15%% of 9 procs (%.2f)" (speedup 5) (speedup 9))
    true
    (speedup 5 >= 0.85 *. speedup 9)

let test_saturation () =
  (* Adding stations beyond the task count yields nothing. *)
  let points = Experiment.saturation ~size:W2.Gen.Medium () in
  let at n = List.assoc n points in
  Alcotest.(check bool) "2 beats 1" true (at 2 < at 1);
  Alcotest.(check bool) "8 beats 4" true (at 8 < at 4);
  Alcotest.(check bool) "12 no better than 8" true (at 12 >= at 8 -. 1.0)

(* --- ablations --- *)

let test_ablation_memory_model () =
  (* Without the memory model the negative system overhead disappears. *)
  let cfg = { Config.default with Config.memory_model = false } in
  let mw = Experiment.s_program_work ~size:W2.Gen.Medium ~count:1 () in
  let c = Experiment.measure ~cfg mw in
  Alcotest.(check bool)
    (Printf.sprintf "sys overhead %.1f%% >= 0 without memory model"
       c.Timings.rel_sys_overhead)
    true
    (c.Timings.rel_sys_overhead >= 0.0)

let test_ablation_core_download () =
  (* Without core-image downloads, tiny functions overhead shrinks. *)
  let with_dl =
    (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 ()))
      .Timings.par.Timings.elapsed
  in
  let cfg = { Config.default with Config.core_download = false } in
  let without_dl =
    (Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 ()))
      .Timings.par.Timings.elapsed
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.0fs < %.0fs" without_dl with_dl)
    true (without_dl < with_dl)

let test_ablation_ideal_network () =
  let baseline =
    (Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Small ~count:8 ()))
      .Timings.par.Timings.elapsed
  in
  let cfg = { Config.default with Config.ideal_network = true } in
  let ideal =
    (Experiment.measure ~cfg (Experiment.s_program_work ~size:W2.Gen.Small ~count:8 ()))
      .Timings.par.Timings.elapsed
  in
  Alcotest.(check bool)
    (Printf.sprintf "ideal %.0fs < real %.0fs" ideal baseline)
    true (ideal < baseline)

let suites =
  [
    ( "parallel.plan",
      [
        Alcotest.test_case "one per station" `Quick test_plan_one_per_station;
        Alcotest.test_case "grouped counts" `Quick test_plan_grouped_counts;
        Alcotest.test_case "grouped balance" `Quick test_plan_grouped_balance;
        Alcotest.test_case "covers all functions" `Quick test_plan_covers_all_functions;
      ] );
    ( "parallel.runs",
      [
        Alcotest.test_case "sequential deterministic" `Quick test_seqrun_deterministic;
        Alcotest.test_case "stations used" `Quick test_parrun_uses_stations;
        Alcotest.test_case "pool limits concurrency" `Quick test_parrun_pool_limits_concurrency;
        Alcotest.test_case "overhead decomposition" `Quick test_overhead_decomposition_consistent;
      ] );
    ( "parallel.phenomena",
      [
        Alcotest.test_case "tiny useless" `Slow test_tiny_functions_useless;
        Alcotest.test_case "large wins 3-6x" `Slow test_large_functions_win;
        Alcotest.test_case "speedup grows with n" `Slow test_speedup_grows_with_functions;
        Alcotest.test_case "medium negative sys overhead" `Slow
          test_medium_negative_system_overhead;
        Alcotest.test_case "huge worse than large" `Slow test_huge_worse_than_large;
        Alcotest.test_case "overhead grows with n" `Slow test_overhead_grows_with_n;
        Alcotest.test_case "user program" `Slow test_user_program_speedups;
        Alcotest.test_case "saturation" `Slow test_saturation;
      ] );
    ( "parallel.ablations",
      [
        Alcotest.test_case "memory model" `Slow test_ablation_memory_model;
        Alcotest.test_case "core download" `Slow test_ablation_core_download;
        Alcotest.test_case "ideal network" `Slow test_ablation_ideal_network;
      ] );
  ]

(* --- section 5.1: inlining study --- *)

let test_inlining_study () =
  let study = Experiment.run_inlining_study () in
  Alcotest.(check bool) "calls were inlined" true (study.Experiment.calls_inlined > 0);
  Alcotest.(check bool) "fewer functions after pruning" true
    (study.Experiment.inlined_functions < study.Experiment.baseline_functions);
  Alcotest.(check bool)
    (Printf.sprintf "inlined speedup %.2f >= baseline %.2f"
       study.Experiment.inlined.Timings.speedup
       study.Experiment.baseline.Timings.speedup)
    true
    (study.Experiment.inlined.Timings.speedup
    >= study.Experiment.baseline.Timings.speedup)

(* --- domains: real parallel execution of the hierarchy --- *)

let test_domains_equivalent () =
  let m = W2.Gen.s_program ~size:W2.Gen.Small ~count:3 () in
  let result = Domains.compile_parallel ~workers:3 m in
  Alcotest.(check int) "one section" 1 (List.length result.Domains.images);
  let _, image = List.hd result.Domains.images in
  (* The domain-compiled image computes the same value as the reference
     interpreter. *)
  let sec = List.hd m.W2.Ast.sections in
  let f = List.hd sec.W2.Ast.funcs in
  let expected =
    match
      W2.Interp.run_function ~fuel:5_000_000 sec ~name:f.W2.Ast.fname
        ~args:[ W2.Interp.Vint 4; W2.Interp.Vint 1 ]
    with
    | Some (W2.Interp.Vfloat v) -> v
    | _ -> Alcotest.fail "reference failed"
  in
  match
    Warp.Cellsim.run ~fuel:50_000_000 image ~name:f.W2.Ast.fname
      ~args:[ Midend.Ir_interp.Vi 4; Midend.Ir_interp.Vi 1 ]
  with
  | Some (Midend.Ir_interp.Vf v), _ ->
    Alcotest.(check (float 1e-9)) "same value" expected v
  | _ -> Alcotest.fail "domain-compiled image failed"

let extension_suites =
  [
    ( "parallel.extensions",
      [
        Alcotest.test_case "inlining study" `Slow test_inlining_study;
        Alcotest.test_case "domains equivalence" `Slow test_domains_equivalent;
      ] );
  ]

let suites = suites @ extension_suites

(* --- section 3.4: parallel make coexistence --- *)

let test_make_study_ordering () =
  let results = Experiment.run_make_study () in
  let elapsed s =
    (List.find (fun (r : Makerun.result) -> r.Makerun.strategy = s) results)
      .Makerun.elapsed
  in
  (* The paper's coexistence claim: every parallel strategy beats
     sequential, and combining parallel make with the parallel compiler
     beats either alone. *)
  Alcotest.(check bool) "make beats seq" true
    (elapsed Makerun.Parallel_make < elapsed Makerun.Sequential);
  Alcotest.(check bool) "parallel cc beats seq" true
    (elapsed Makerun.Parallel_cc < elapsed Makerun.Sequential);
  Alcotest.(check bool) "combined beats make" true
    (elapsed Makerun.Combined < elapsed Makerun.Parallel_make);
  Alcotest.(check bool) "combined beats parallel cc" true
    (elapsed Makerun.Combined < elapsed Makerun.Parallel_cc)

(* --- section 5: finer grain --- *)

let test_grain_study_tradeoff () =
  let points = Experiment.run_grain_study () in
  List.iter
    (fun (g : Experiment.grain_point) ->
      (* Fine grain pays double startup and IR shipping; on this host it
         must stay within 25% of coarse but not beat it outright — the
         reason the authors picked functions as the grain. *)
      Alcotest.(check bool)
        (Printf.sprintf "stations=%d coarse %.0f, fine %.0f" g.Experiment.gp_stations
           g.Experiment.coarse g.Experiment.fine)
        true
        (g.Experiment.fine < 1.25 *. g.Experiment.coarse
        && g.Experiment.fine > 0.9 *. g.Experiment.coarse))
    points

let coexistence_suites =
  [
    ( "parallel.coexistence",
      [
        Alcotest.test_case "make study ordering" `Slow test_make_study_ordering;
        Alcotest.test_case "grain tradeoff" `Slow test_grain_study_tradeoff;
      ] );
  ]

let suites = suites @ coexistence_suites

(* --- compare_runs sign conventions --- *)

let run_fixture ~elapsed ~master ~section ~parse =
  {
    Timings.elapsed;
    cpu_per_station = [ elapsed ];
    master_cpu = master;
    section_cpu = section;
    extra_parse_cpu = parse;
    stations_used = 1;
    dispatch_units = 1;
    retries = 0;
    stations_lost = 0;
    fallback_tasks = 0;
    wasted_cpu = 0.0;
    spec_dispatched = 0;
    spec_committed = 0;
    spec_rolled_back = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidated = 0;
  }

let test_negative_system_overhead_sign () =
  (* Parallel elapsed below ideal + implementation overhead: the system
     overhead must come out negative (the paper's figures 9/10 show
     exactly this for the medium programs, where the parallel compiler
     escapes the sequential compiler's paging). *)
  let seq = run_fixture ~elapsed:1000.0 ~master:0.0 ~section:0.0 ~parse:0.0 in
  let par = run_fixture ~elapsed:120.0 ~master:10.0 ~section:15.0 ~parse:5.0 in
  let c = Timings.compare_runs ~processors:10 ~seq ~par in
  Alcotest.(check (float 1e-9)) "ideal" 100.0
    (Timings.ideal_time ~seq ~processors:10);
  Alcotest.(check (float 1e-9)) "total = par - ideal" 20.0 c.Timings.total_overhead;
  Alcotest.(check (float 1e-9)) "impl = master + section + parse" 30.0
    c.Timings.impl_overhead;
  Alcotest.(check (float 1e-9)) "sys = total - impl" (-10.0) c.Timings.sys_overhead;
  Alcotest.(check bool) "relative sys overhead negative" true
    (c.Timings.rel_sys_overhead < 0.0);
  Alcotest.(check (float 1e-9)) "relative sys in percent of par elapsed"
    (-10.0 /. 120.0 *. 100.0)
    c.Timings.rel_sys_overhead

let test_tiny_relative_overhead_exceeds_half () =
  (* Tiny functions: startup and shipping dominate, so the overhead is
     more than half the parallel elapsed time and the speedup is below
     one — both signs, fixture and measured. *)
  let seq = run_fixture ~elapsed:100.0 ~master:0.0 ~section:0.0 ~parse:0.0 in
  let par = run_fixture ~elapsed:90.0 ~master:12.0 ~section:8.0 ~parse:10.0 in
  let c = Timings.compare_runs ~processors:10 ~seq ~par in
  Alcotest.(check (float 1e-9)) "fixture relative overhead"
    (80.0 /. 90.0 *. 100.0)
    c.Timings.rel_total_overhead;
  Alcotest.(check bool) "fixture overhead beyond 50%" true
    (c.Timings.rel_total_overhead > 50.0);
  let measured =
    Experiment.measure (Experiment.s_program_work ~size:W2.Gen.Tiny ~count:4 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured tiny overhead %.1f%% beyond 50%%"
       measured.Timings.rel_total_overhead)
    true
    (measured.Timings.rel_total_overhead > 50.0);
  Alcotest.(check (float 1e-9)) "relative is percent of par elapsed"
    (measured.Timings.total_overhead
    /. measured.Timings.par.Timings.elapsed
    *. 100.0)
    measured.Timings.rel_total_overhead

let sign_suites =
  [
    ( "parallel.signs",
      [
        Alcotest.test_case "negative system overhead" `Quick
          test_negative_system_overhead_sign;
        Alcotest.test_case "tiny relative overhead > 50%" `Quick
          test_tiny_relative_overhead_exceeds_half;
      ] );
  ]

let suites = suites @ sign_suites

(* --- section 6: scaling limit --- *)

let test_scaling_comfort_zone () =
  (* Efficiency decays as processors grow; in the paper's own
     environment (pool capped at ~15 stations) speedup plateaus. *)
  let unlimited = Experiment.run_scaling_study () in
  let eff n =
    let p = List.find (fun (p : Experiment.point) -> p.Experiment.n_functions = n) unlimited in
    p.Experiment.comparison.Timings.speedup /. float_of_int n
  in
  Alcotest.(check bool) "efficiency decays" true (eff 32 < eff 16 && eff 16 < eff 4);
  let capped = Experiment.run_scaling_study ~max_stations:15 () in
  let speedup n =
    (List.find (fun (p : Experiment.point) -> p.Experiment.n_functions = n) capped)
      .Experiment.comparison.Timings.speedup
  in
  (* Doubling the workload from 16 to 32 functions on the fixed pool
     buys less than 30% — the plateau. *)
  Alcotest.(check bool)
    (Printf.sprintf "plateau: %.2f -> %.2f" (speedup 16) (speedup 32))
    true
    (speedup 32 < 1.3 *. speedup 16)

let scaling_suites =
  [ ("parallel.scaling", [ Alcotest.test_case "comfort zone" `Slow test_scaling_comfort_zone ]) ]

let suites = suites @ scaling_suites
