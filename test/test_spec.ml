(* Speculative dispatch (dag+spec): edge confidence classification, the
   commit protocol, its interaction with fault injection, and the
   degradation knobs.

   The guarantees, by layer:
   - Depan splits edges into proven (structural: inline_of or
     sig_agreement) and speculative (data reasons only), and its
     uncapped-summary oracle marks which speculative pairs really
     conflict (hot).
   - On blinded programs (independent, but pinned by summary_limit at a
     lowered tracking cap) dag+spec overlaps every speculative edge,
     commits every attempt, and beats dag+lpt.
   - On the deliberately racy program the commit oracle rolls attempts
     back, the run terminates, every task is written back exactly once,
     and the compiled artifact is bit-identical to a sequential build.
   - spec_budget 0 degrades to dag+lpt bit for bit; the whole chaos
     matrix passes under dag+spec with the trace oracles armed. *)

open Parallel_cc

(* The blinded module: 4 independent workers the analyzer cannot prove
   apart (abstract interpretation off, tracking cap 8 < fan-out 24). *)
let blinded () =
  Experiment.spec_program_work ~max_tracked:8 ~absint:false ~name:"blinded4"
    (fun () -> W2.Gen.speculative_program ~workers:4 ~fanout:24 ())

let racy () =
  Experiment.spec_program_work ~absint:true ~name:"racy3" (fun () ->
      W2.Gen.racy_program ~scatters:3 ())

(* --- edge confidence and the hot-pair oracle --- *)

let test_confidence_classification () =
  let mw = blinded () in
  let plan = Plan.one_per_station mw in
  let spec_count =
    List.fold_left (fun n (_, es) -> n + List.length es) 0 plan.Plan.spec_edges
  in
  let hot_count =
    List.fold_left (fun n (_, es) -> n + List.length es) 0 plan.Plan.hot_edges
  in
  Alcotest.(check bool)
    (Printf.sprintf "blinded: summary_limit edges are speculative (%d)"
       spec_count)
    true (spec_count > 0);
  Alcotest.(check int) "blinded: no pair really conflicts (cold)" 0 hot_count;
  (* Proven = full minus speculative, per section. *)
  let proven = Plan.proven_deps plan in
  List.iter
    (fun (s, es) ->
      let full = List.assoc s plan.Plan.func_deps in
      let spec = List.assoc s plan.Plan.spec_edges in
      Alcotest.(check int)
        (s ^ ": proven + speculative = all edges")
        (List.length full)
        (List.length es + List.length spec))
    proven

let test_racy_edges_hot () =
  let mw = racy () in
  let plan = Plan.one_per_station mw in
  List.iter
    (fun (s, es) ->
      let hot = List.assoc s plan.Plan.hot_edges in
      Alcotest.(check bool)
        (s ^ ": racy conflicts survive as speculative edges")
        true (es <> []);
      Alcotest.(check (list (pair string string)))
        (s ^ ": every racy speculative edge is hot")
        (List.sort compare es) (List.sort compare hot))
    plan.Plan.spec_edges

let test_structural_edges_stay_proven () =
  (* The helper program's edges are all inline_of/sig_agreement:
     nothing to speculate past, so dag+spec degenerates to gating
     every edge. *)
  let mw = Experiment.helper_program_work () in
  let plan = Plan.one_per_station mw in
  List.iter
    (fun (s, es) ->
      Alcotest.(check int) (s ^ ": no speculative edges") 0 (List.length es))
    plan.Plan.spec_edges

(* --- the sweep: speculation wins where analysis was conservative --- *)

let test_spec_sweep () =
  let points = Experiment.spec_sweep () in
  Alcotest.(check int) "three series" 3 (List.length points);
  List.iter
    (fun (p : Experiment.spec_point) ->
      Alcotest.(check int)
        (p.Experiment.zp_series ^ ": race-free")
        0 p.Experiment.zp_race_violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s: dag+spec %.1f <= dag+lpt %.1f"
           p.Experiment.zp_series p.Experiment.zp_elapsed_spec
           p.Experiment.zp_elapsed_lpt)
        true
        (p.Experiment.zp_elapsed_spec <= p.Experiment.zp_elapsed_lpt);
      if String.length p.Experiment.zp_series >= 7
         && String.sub p.Experiment.zp_series 0 7 = "blinded"
      then begin
        Alcotest.(check bool)
          (p.Experiment.zp_series ^ ": strictly faster than dag+lpt")
          true
          (p.Experiment.zp_elapsed_spec < p.Experiment.zp_elapsed_lpt);
        Alcotest.(check int)
          (p.Experiment.zp_series ^ ": every speculation committed")
          p.Experiment.zp_dispatched p.Experiment.zp_committed;
        Alcotest.(check int)
          (p.Experiment.zp_series ^ ": no rollbacks")
          0 p.Experiment.zp_rolled_back
      end
      else begin
        Alcotest.(check bool)
          (p.Experiment.zp_series ^ ": misspeculation detected")
          true
          (p.Experiment.zp_rolled_back >= 1);
        Alcotest.(check bool)
          (p.Experiment.zp_series ^ ": hot edges present")
          true
          (p.Experiment.zp_hot_edges > 0)
      end)
    points

(* --- the racy program: rollback, exactly-once, identical artifact --- *)

let all_heads mw =
  List.map
    (fun fw -> fw.Driver.Compile.fw_name)
    (Driver.Compile.all_funcs mw)
  |> List.sort compare

(* Under dag+spec the proven edges rarely split levels, so tiny tasks
   can batch into shared dispatch units; coverage is then checked
   against the scheduled plan's unit heads (the test_sched idiom). *)
let spec_scheduled_heads ~stations mw =
  let scheduled =
    Sched.schedule ~policy:Sched.Dag_spec ~cost:Config.default.Config.cost
      ~threshold:Config.default.Config.batch_threshold ~stations
      (Plan.one_per_station mw)
  in
  List.concat_map
    (fun (_, tasks) ->
      List.map
        (fun (t : Plan.task) ->
          (List.hd t.Plan.t_funcs).Driver.Compile.fw_name)
        tasks)
    scheduled.Plan.tasks_per_section
  |> List.sort compare

let completed_heads (o : Parrun.outcome) =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n >= 3 && String.sub name (n - 3) 3 = "#p3" then None else Some name)
    o.Parrun.station_of_task
  |> List.sort compare

let spec_cfg ?(stations = 4) ?(budget = Config.default.Config.spec_budget) () =
  {
    Config.default with
    Config.stations;
    noise_seed = 3;
    sched_policy = Sched.Dag_spec;
    spec_budget = budget;
  }

let test_racy_rolls_back_and_recovers () =
  let mw = racy () in
  let plan = Plan.one_per_station mw in
  let tr = Trace.create () in
  let o = Parrun.run { (spec_cfg ()) with Config.trace = tr } mw plan in
  (* Parrun already asserted the trace matches the counters and the
     speculation-aware race oracle on this fresh trace. *)
  Alcotest.(check bool) "at least one rollback" true
    (o.Parrun.run.Timings.spec_rolled_back >= 1);
  Alcotest.(check (list string))
    "every task written back exactly once"
    (spec_scheduled_heads ~stations:4 mw)
    (completed_heads o);
  (* The racy tasks sit above the batch threshold, so no units merged
     and the unit heads really are all three scatter functions. *)
  Alcotest.(check (list string))
    "racy units are unmerged" (all_heads mw)
    (spec_scheduled_heads ~stations:4 mw);
  Alcotest.(check int) "dispatched = committed + rolled back"
    o.Parrun.run.Timings.spec_dispatched
    (o.Parrun.run.Timings.spec_committed
    + o.Parrun.run.Timings.spec_rolled_back);
  (* Rolled-back attempts' CPU lands in the wasted account. *)
  Alcotest.(check bool) "rollbacks charged to wasted_cpu" true
    (o.Parrun.run.Timings.wasted_cpu > 0.0)

let test_racy_artifact_schedule_independent () =
  (* The compiled artifact is a pure function of the source: however
     many rollbacks the simulated schedule takes, the object code is
     the sequential compiler's, bit for bit. *)
  let source = W2.Pretty.module_to_string (W2.Gen.racy_program ()) in
  let a = Driver.Compile.compile_source source in
  let b = Driver.Compile.compile_source source in
  Alcotest.(check int) "identical image bytes"
    (Driver.Compile.total_image_bytes a)
    (Driver.Compile.total_image_bytes b);
  List.iter2
    (fun (sa : Driver.Compile.section_work) (sb : Driver.Compile.section_work) ->
      Alcotest.(check bool)
        (sa.Driver.Compile.sw_name ^ ": identical section image")
        true
        (sa.Driver.Compile.sw_image = sb.Driver.Compile.sw_image))
    a.Driver.Compile.mw_sections b.Driver.Compile.mw_sections

(* --- degradation: spec_budget 0 is dag+lpt, bit for bit --- *)

let test_budget_zero_is_dag_lpt () =
  List.iter
    (fun (name, mw) ->
      let plan = Plan.one_per_station mw in
      let lpt_cfg =
        { (spec_cfg ()) with Config.sched_policy = Sched.Dag_lpt }
      in
      let lpt = (Parrun.run lpt_cfg mw plan).Parrun.run in
      let off = (Parrun.run (spec_cfg ~budget:0 ()) mw plan).Parrun.run in
      Alcotest.(check (float 0.0))
        (name ^ ": --spec-budget 0 elapsed bit-identical to dag+lpt")
        lpt.Timings.elapsed off.Timings.elapsed;
      Alcotest.(check int) (name ^ ": no speculative dispatches") 0
        off.Timings.spec_dispatched;
      Alcotest.(check int)
        (name ^ ": dag+lpt itself never speculates")
        0 lpt.Timings.spec_dispatched)
    [ ("racy", racy ()); ("blinded", blinded ()) ]

let test_nonspec_policies_keep_zero_counters () =
  let mw = blinded () in
  let plan = Plan.one_per_station mw in
  List.iter
    (fun policy ->
      let cfg =
        { (spec_cfg ~stations:5 ()) with Config.sched_policy = policy }
      in
      let r = (Parrun.run cfg mw plan).Parrun.run in
      Alcotest.(check int)
        (Sched.policy_name policy ^ ": zero spec counters")
        0
        (r.Timings.spec_dispatched + r.Timings.spec_committed
       + r.Timings.spec_rolled_back))
    [ Sched.Fcfs; Sched.Lpt; Sched.Lpt_batch; Sched.Dag; Sched.Dag_lpt ]

(* --- the chaos matrix under dag+spec --- *)

(* Every fault kind crossed with coarse/fine grain and retry budgets,
   on both the racy and the blinded module.  Each run is freshly
   traced, so Parrun's oracles (trace-vs-counters and the
   speculation-aware race check) arm themselves; on top we require
   termination and exactly-once write-back. *)
let test_chaos_matrix_spec () =
  List.iter
    (fun (mname, mw) ->
      let plan = Plan.one_per_station mw in
      let run ?(budget = Config.default.Config.retry_budget) ~fine faults =
        let cfg =
          {
            (spec_cfg ()) with
            Config.fine_grained = fine;
            faults;
            retry_budget = budget;
            trace = Trace.create ();
          }
        in
        Parrun.run cfg mw plan
      in
      let expected = spec_scheduled_heads ~stations:4 mw in
      let ff =
        (run ~fine:false Netsim.Fault.none).Parrun.run.Timings.elapsed
      in
      let fault_plans =
        [
          ("crash", Netsim.Fault.Crash { station = 2; at = 0.3 *. ff });
          ("reclaim", Netsim.Fault.Reclaim { station = 2; at = 0.25 *. ff });
          ( "slowdown",
            Netsim.Fault.Slowdown
              { station = 3; from_ = 0.1 *. ff; until = 0.6 *. ff; factor = 3.0 }
          );
          ( "fs-brownout",
            Netsim.Fault.Fs_brownout
              { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 4.0 } );
          ( "ether-degrade",
            Netsim.Fault.Ether_degrade
              { from_ = 0.05 *. ff; until = 0.5 *. ff; factor = 3.0 } );
        ]
      in
      List.iter
        (fun fine ->
          List.iter
            (fun (kind, event) ->
              List.iter
                (fun budget ->
                  let label =
                    Printf.sprintf "%s %s %s budget=%d" mname
                      (if fine then "fine" else "coarse")
                      kind budget
                  in
                  let o =
                    run ~budget ~fine { Netsim.Fault.events = [ event ] }
                  in
                  Alcotest.(check bool)
                    (label ^ ": terminates")
                    true
                    (o.Parrun.run.Timings.elapsed > 0.0);
                  Alcotest.(check (list string))
                    (label ^ ": exactly-once write-back")
                    expected (completed_heads o))
                [ 0; 2 ])
            fault_plans)
        [ false; true ])
    [ ("racy", racy ()); ("blinded", blinded ()) ]

(* --- properties: backoff monotonicity, stragglers are wasted --- *)

let test_backoff_monotone () =
  QCheck.Test.make ~count:200 ~name:"exponential backoff is monotone"
    QCheck.(pair (float_bound_inclusive 120.0) (int_range 0 20))
    (fun (base, step) ->
      let cfg = { Config.default with Config.retry_backoff_seconds = base } in
      let d0 = Config.backoff_delay cfg ~step in
      let d1 = Config.backoff_delay cfg ~step:(step + 1) in
      d0 >= 0.0 && d1 >= d0 && d1 = 2.0 *. d0)

(* A slowdown (never a crash) stretches one station: any timeout-driven
   re-dispatch leaves a straggler that eventually finishes, and whoever
   loses the race — straggler or re-dispatch — must be charged to
   wasted_cpu. *)
let test_straggler_charged_to_wasted () =
  QCheck.Test.make ~count:25 ~name:"beaten stragglers land in wasted_cpu"
    QCheck.(pair (int_range 2 4) (float_range 2.5 8.0))
    (fun (station, factor) ->
      let mw = Experiment.s_program_work ~size:W2.Gen.Small ~count:4 () in
      let plan = Plan.one_per_station mw in
      let ff =
        (Parrun.run
           { Config.default with Config.stations = 5; noise_seed = 3 }
           mw plan)
          .Parrun.run.Timings.elapsed
      in
      let faults =
        {
          Netsim.Fault.events =
            [
              Netsim.Fault.Slowdown
                { station; from_ = 0.0; until = 2.0 *. ff; factor };
            ];
        }
      in
      let r =
        (Parrun.run
           { Config.default with Config.stations = 5; noise_seed = 3; faults }
           mw plan)
          .Parrun.run
      in
      (* No stations are ever lost to a slowdown, so a retry implies a
         straggler raced a re-dispatch and the loser was superseded. *)
      r.Timings.stations_lost = 0
      && (r.Timings.retries = 0 || r.Timings.wasted_cpu > 0.0))

let suites =
  [
    ( "spec.analysis",
      [
        Alcotest.test_case "confidence classification" `Quick
          test_confidence_classification;
        Alcotest.test_case "racy edges are hot" `Quick test_racy_edges_hot;
        Alcotest.test_case "structural edges stay proven" `Quick
          test_structural_edges_stay_proven;
      ] );
    ( "spec.runtime",
      [
        Alcotest.test_case "spec sweep" `Slow test_spec_sweep;
        Alcotest.test_case "racy rolls back and recovers" `Quick
          test_racy_rolls_back_and_recovers;
        Alcotest.test_case "racy artifact schedule-independent" `Quick
          test_racy_artifact_schedule_independent;
        Alcotest.test_case "spec-budget 0 is dag+lpt" `Quick
          test_budget_zero_is_dag_lpt;
        Alcotest.test_case "non-spec policies keep zero counters" `Quick
          test_nonspec_policies_keep_zero_counters;
      ] );
    ( "spec.chaos",
      [ Alcotest.test_case "chaos matrix (dag+spec)" `Slow test_chaos_matrix_spec ] );
    ( "spec.props",
      [
        QCheck_alcotest.to_alcotest (test_backoff_monotone ());
        QCheck_alcotest.to_alcotest (test_straggler_charged_to_wasted ());
      ] );
  ]
